//! Property tests pinning the AVX2 microkernels to the scalar semantics.
//!
//! Every test runs the kernel under *both* forced dispatch levels via
//! [`simd::with_level`]. On hosts without AVX2 the forced-Avx2 run clamps
//! to scalar, so the properties degenerate to scalar==scalar and still pass
//! — the suite is portable, it just only *bites* on x86-64.
//!
//! Shape strategy deliberately includes odd / non-multiple-of-tile sizes so
//! the microkernel edge handling (partial 4-row tiles, ragged 16-column
//! strips, k-loop tails) is exercised, not just the fast interior.

use hetero_tensor::simd::{self, SimdLevel};
use hetero_tensor::{gemm, ops, Matrix};
use proptest::prelude::*;

/// Shapes that straddle the register-tile boundaries (NN tiles are 4×16,
/// NT 4×2, TN 2×16), including 1 and primes.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 1usize..40, 1usize..40)
}

fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Run one GEMM flavour under a forced level and compare to the f64
/// reference. `beta != 0` checks the C-accumulation path too.
#[allow(clippy::too_many_arguments)]
fn check_gemm_level(
    level: SimdLevel,
    kernel: impl Fn(f32, &Matrix, &Matrix, f32, &mut Matrix),
    a: &Matrix,
    a_t: bool,
    b: &Matrix,
    b_t: bool,
    m: usize,
    n: usize,
    seed: u64,
) -> bool {
    let c0 = seeded(m, n, seed ^ 0x5eed);
    let mut c = c0.clone();
    simd::with_level(level, || kernel(0.75, a, b, 0.5, &mut c));
    let mut c_ref = c0;
    gemm::gemm_reference(0.75, a, a_t, b, b_t, 0.5, &mut c_ref);
    close(&c, &c_ref, 1e-4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NN matches the reference with dispatch forced each way.
    #[test]
    fn gemm_nn_matches_reference_both_levels((m, k, n) in dims(), seed in any::<u64>()) {
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 1);
        for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
            prop_assert!(
                check_gemm_level(level, gemm::gemm_nn, &a, false, &b, false, m, n, seed),
                "gemm_nn diverged from reference at {level:?} for {m}x{k}x{n}"
            );
        }
    }

    /// NT (A·Bᵀ) matches the reference with dispatch forced each way.
    #[test]
    fn gemm_nt_matches_reference_both_levels((m, k, n) in dims(), seed in any::<u64>()) {
        let a = seeded(m, k, seed);
        let bt = seeded(n, k, seed ^ 2);
        for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
            prop_assert!(
                check_gemm_level(level, gemm::gemm_nt, &a, false, &bt, true, m, n, seed),
                "gemm_nt diverged from reference at {level:?} for {m}x{k}x{n}"
            );
        }
    }

    /// TN (Aᵀ·B) matches the reference with dispatch forced each way.
    #[test]
    fn gemm_tn_matches_reference_both_levels((m, k, n) in dims(), seed in any::<u64>()) {
        let at = seeded(k, m, seed);
        let b = seeded(k, n, seed ^ 3);
        for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
            prop_assert!(
                check_gemm_level(level, gemm::gemm_tn, &at, true, &b, false, m, n, seed),
                "gemm_tn diverged from reference at {level:?} for {m}x{k}x{n}"
            );
        }
    }

    /// The fused bias epilogue equals unfused GEMM + broadcast add, at both
    /// levels — and the two levels agree with each other bit-for-bit is NOT
    /// required (the fused path may round differently), only to tolerance.
    #[test]
    fn gemm_nt_bias_equals_unfused((m, k, n) in dims(), seed in any::<u64>()) {
        let a = seeded(m, k, seed);
        let bt = seeded(n, k, seed ^ 4);
        let bias: Vec<f32> = seeded(1, n, seed ^ 5).as_slice().to_vec();
        let mut expect = Matrix::zeros(m, n);
        gemm::gemm_reference(1.0, &a, false, &bt, true, 0.0, &mut expect);
        ops::add_row_broadcast(&mut expect, &bias);
        for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
            let mut c = Matrix::zeros(m, n);
            simd::with_level(level, || gemm::gemm_nt_bias(1.0, &a, &bt, &bias, &mut c));
            prop_assert!(
                close(&c, &expect, 1e-4),
                "gemm_nt_bias diverged at {level:?} for {m}x{k}x{n}"
            );
        }
    }

    /// Linear element-wise kernels (mul/add only, scalar element order) are
    /// bit-exact across dispatch levels.
    #[test]
    fn linear_ops_bit_exact_across_levels(
        alpha in -4.0f32..4.0,
        beta in -4.0f32..4.0,
        len in 1usize..100,
        seed in any::<u64>(),
    ) {
        let x: Vec<f32> = seeded(1, len, seed).as_slice().to_vec();
        let y: Vec<f32> = seeded(1, len, seed ^ 6).as_slice().to_vec();
        let xm = Matrix::from_vec(1, len, x.clone());
        let run = |level: SimdLevel| {
            simd::with_level(level, || {
                let mut y1 = y.clone();
                ops::axpy(alpha, &x, &mut y1);
                let mut y2 = y.clone();
                ops::axpby(alpha, &x, beta, &mut y2);
                let mut y3 = y.clone();
                ops::scale(alpha, &mut y3);
                let mut h = Matrix::from_vec(1, len, y.clone());
                ops::hadamard_assign(&mut h, &xm);
                let mut sd = y.clone();
                ops::mul_sigmoid_derivative_slice(&x, &mut sd);
                let mut rd = Matrix::from_vec(1, len, y.clone());
                ops::mul_relu_derivative(&xm, &mut rd);
                let mut td = Matrix::from_vec(1, len, y.clone());
                ops::mul_tanh_derivative(&xm, &mut td);
                (y1, y2, y3, h, sd, rd, td)
            })
        };
        prop_assert_eq!(run(SimdLevel::Scalar), run(SimdLevel::Avx2));
    }

    /// Broadcast / reduction kernels are bit-exact across levels: the SIMD
    /// column-sum accumulates per-column exactly like the scalar loop.
    #[test]
    fn broadcast_and_colsum_bit_exact(rows in 1usize..20, cols in 1usize..40, seed in any::<u64>()) {
        let m0 = seeded(rows, cols, seed);
        let row: Vec<f32> = seeded(1, cols, seed ^ 7).as_slice().to_vec();
        let run = |level: SimdLevel| {
            simd::with_level(level, || {
                let mut m = m0.clone();
                ops::add_row_broadcast(&mut m, &row);
                let sums = ops::col_sum(&m0);
                (m, sums)
            })
        };
        prop_assert_eq!(run(SimdLevel::Scalar), run(SimdLevel::Avx2));
    }

    /// Activations with a polynomial-exp SIMD path agree to float tolerance
    /// (they are NOT bit-exact by design) and preserve range invariants.
    #[test]
    fn activations_agree_to_tolerance(rows in 1usize..8, cols in 1usize..40, seed in any::<u64>()) {
        let mut wide = seeded(rows, cols, seed);
        ops::scale(8.0, wide.as_mut_slice()); // push into the saturating tails too
        let run = |level: SimdLevel| {
            simd::with_level(level, || {
                let mut s = wide.clone();
                ops::sigmoid_inplace(&mut s);
                let mut t = wide.clone();
                ops::tanh_inplace(&mut t);
                let mut r = wide.clone();
                ops::relu_inplace(&mut r);
                (s, t, r)
            })
        };
        let (s0, t0, r0) = run(SimdLevel::Scalar);
        let (s1, t1, r1) = run(SimdLevel::Avx2);
        prop_assert!(close(&s0, &s1, 1e-5), "sigmoid diverged past tolerance");
        prop_assert!(close(&t0, &t1, 1e-5), "tanh diverged past tolerance");
        // relu is a pure max — bit-exact.
        prop_assert_eq!(r0, r1);
        prop_assert!(s1.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(t1.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }
}
