//! Property-based tests for the tensor kernels.

use hetero_tensor::{gemm, ops, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with elements in [-1, 1].
fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..24, 1usize..24, 1usize..24)
}

fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// gemm_nn agrees with the f64 reference for arbitrary shapes/values.
    #[test]
    fn gemm_nn_matches_reference((m, k, n) in dims(), seed in any::<u64>()) {
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0xabcd);
        let mut c = Matrix::zeros(m, n);
        let mut c_ref = Matrix::zeros(m, n);
        gemm::gemm_nn(1.0, &a, &b, 0.0, &mut c);
        gemm::gemm_reference(1.0, &a, false, &b, false, 0.0, &mut c_ref);
        prop_assert!(close(&c, &c_ref, 1e-4));
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ, exercising NN against TN/NT consistency.
    #[test]
    fn transpose_of_product((m, k, n) in dims(), seed in any::<u64>()) {
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 1);
        let mut ab = Matrix::zeros(m, n);
        gemm::gemm_nn(1.0, &a, &b, 0.0, &mut ab);
        let mut btat = Matrix::zeros(n, m);
        gemm::gemm_nn(1.0, &b.transpose(), &a.transpose(), 0.0, &mut btat);
        prop_assert!(close(&ab.transpose(), &btat, 1e-4));
    }

    /// gemm is linear in alpha: gemm(2a) == 2*gemm(a).
    #[test]
    fn gemm_linear_in_alpha((m, k, n) in dims(), seed in any::<u64>()) {
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 2);
        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        gemm::gemm_nn(2.0, &a, &b, 0.0, &mut c1);
        gemm::gemm_nn(1.0, &a, &b, 0.0, &mut c2);
        ops::scale(2.0, c2.as_mut_slice());
        prop_assert!(close(&c1, &c2, 1e-4));
    }

    /// NT with an explicit transpose equals NN.
    #[test]
    fn nt_equals_nn_with_transposed_b((m, k, n) in dims(), seed in any::<u64>()) {
        let a = seeded(m, k, seed);
        let bt = seeded(n, k, seed ^ 3);
        let mut c_nt = Matrix::zeros(m, n);
        gemm::gemm_nt(1.0, &a, &bt, 0.0, &mut c_nt);
        let mut c_nn = Matrix::zeros(m, n);
        gemm::gemm_nn(1.0, &a, &bt.transpose(), 0.0, &mut c_nn);
        prop_assert!(close(&c_nt, &c_nn, 1e-4));
    }

    /// TN with an explicit transpose equals NN.
    #[test]
    fn tn_equals_nn_with_transposed_a((m, k, n) in dims(), seed in any::<u64>()) {
        let at = seeded(k, m, seed ^ 4);
        let b = seeded(k, n, seed ^ 5);
        let mut c_tn = Matrix::zeros(m, n);
        gemm::gemm_tn(1.0, &at, &b, 0.0, &mut c_tn);
        let mut c_nn = Matrix::zeros(m, n);
        gemm::gemm_nn(1.0, &at.transpose(), &b, 0.0, &mut c_nn);
        prop_assert!(close(&c_tn, &c_nn, 1e-4));
    }

    /// Parallel kernels agree with serial ones.
    #[test]
    fn parallel_agrees_with_serial(seed in any::<u64>()) {
        let (m, k, n) = (96, 80, 72);
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 6);
        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        gemm::gemm_nn(1.0, &a, &b, 0.0, &mut c1);
        gemm::par_gemm_nn(1.0, &a, &b, 0.0, &mut c2);
        prop_assert!(close(&c1, &c2, 1e-5));
    }

    /// Softmax rows sum to one and lie in (0, 1].
    #[test]
    fn softmax_is_distribution(m in mat(6, 9)) {
        let mut s = m;
        ops::scale(10.0, s.as_mut_slice());
        ops::softmax_rows(&mut s);
        for i in 0..s.rows() {
            let row_sum: f32 = s.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&v| v > 0.0 && v <= 1.0));
        }
    }

    /// Sigmoid output is always in (0, 1) and monotone.
    #[test]
    fn sigmoid_range(x in -50.0f32..50.0, y in -50.0f32..50.0) {
        let mut m = Matrix::from_rows(&[&[x, y]]);
        ops::sigmoid_inplace(&mut m);
        prop_assert!(m.get(0, 0) >= 0.0 && m.get(0, 0) <= 1.0);
        if x < y {
            prop_assert!(m.get(0, 0) <= m.get(0, 1));
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(m in mat(11, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// axpy then axpy(-alpha) restores the original vector (within tolerance).
    #[test]
    fn axpy_inverse(alpha in -4.0f32..4.0, v in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let x: Vec<f32> = v.iter().map(|a| a * 0.5).collect();
        let mut y = v.clone();
        ops::axpy(alpha, &x, &mut y);
        ops::axpy(-alpha, &x, &mut y);
        for (a, b) in y.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }
}

fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}
