//! Stress and numerical-behaviour tests for the GEMM kernels beyond the
//! unit-test shapes.

use hetero_tensor::{gemm, ops, Matrix};

fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

#[test]
fn large_rectangular_shapes_match_reference() {
    // Shapes deliberately straddling the blocking constants (KB=256, JB=512).
    for &(m, k, n) in &[
        (3usize, 700usize, 1100usize),
        (257, 513, 31),
        (129, 255, 520),
    ] {
        let a = pseudo(m, k, 1);
        let b = pseudo(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        let mut c_ref = Matrix::zeros(m, n);
        gemm::par_gemm_nn(1.0, &a, &b, 0.0, &mut c);
        gemm::gemm_reference(1.0, &a, false, &b, false, 0.0, &mut c_ref);
        for (x, y) in c.as_slice().iter().zip(c_ref.as_slice()) {
            assert!(
                (x - y).abs() <= 2e-3 * (1.0 + x.abs().max(y.abs())),
                "({m},{k},{n}): {x} vs {y}"
            );
        }
    }
}

#[test]
fn repeated_accumulation_beta_one_is_additive() {
    let (m, k, n) = (40, 30, 50);
    let a = pseudo(m, k, 5);
    let b = pseudo(k, n, 6);
    let mut once = Matrix::zeros(m, n);
    gemm::gemm_nn(1.0, &a, &b, 0.0, &mut once);
    // Accumulate the same product 4 times with beta = 1.
    let mut acc = Matrix::zeros(m, n);
    for _ in 0..4 {
        gemm::gemm_nn(1.0, &a, &b, 1.0, &mut acc);
    }
    let mut four = once.clone();
    ops::scale(4.0, four.as_mut_slice());
    assert!(acc.approx_eq(&four, 1e-3), "beta=1 accumulation drifted");
}

#[test]
fn alpha_beta_combination_matches_manual() {
    let (m, k, n) = (17, 23, 19);
    let a = pseudo(m, k, 9);
    let b = pseudo(k, n, 10);
    let c0 = pseudo(m, n, 11);
    let mut c = c0.clone();
    gemm::gemm_nn(0.3, &a, &b, -0.7, &mut c);
    // Manual: -0.7*c0 + 0.3*(a*b)
    let mut ab = Matrix::zeros(m, n);
    gemm::gemm_nn(1.0, &a, &b, 0.0, &mut ab);
    for i in 0..m {
        for j in 0..n {
            let want = -0.7 * c0.get(i, j) + 0.3 * ab.get(i, j);
            let got = c.get(i, j);
            assert!((want - got).abs() < 1e-4, "{want} vs {got}");
        }
    }
}

#[test]
fn kernels_preserve_finiteness_on_extreme_inputs() {
    // Large but finite magnitudes must not overflow to inf in f32 for these
    // modest inner dimensions.
    let a = Matrix::full(8, 16, 1e15);
    let b = Matrix::full(16, 8, 1e15);
    let mut c = Matrix::zeros(8, 8);
    gemm::gemm_nn(1e-20, &a, &b, 0.0, &mut c);
    assert!(c.all_finite());
    assert!((c.get(0, 0) - 16.0 * 1e10).abs() / (16.0 * 1e10) < 1e-3);
}

#[test]
fn single_row_and_single_col_products() {
    // Degenerate GEMV-like shapes hit the kernels' edge paths.
    let a = pseudo(1, 300, 3);
    let b = pseudo(300, 1, 4);
    let mut c = Matrix::zeros(1, 1);
    gemm::gemm_nn(1.0, &a, &b, 0.0, &mut c);
    let manual: f32 = (0..300).map(|i| a.get(0, i) * b.get(i, 0)).sum();
    assert!((c.get(0, 0) - manual).abs() < 1e-3);

    let mut c_nt = Matrix::zeros(1, 1);
    gemm::gemm_nt(1.0, &a, &b.transpose(), 0.0, &mut c_nt);
    assert!((c_nt.get(0, 0) - manual).abs() < 1e-3);
}
