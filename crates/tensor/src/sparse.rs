//! Compressed sparse row (CSR) matrices and the two products sparse MLP
//! training needs.
//!
//! The paper processes every dataset "in dense format" (§VII-A) — even
//! real-sim at ~0.25% density. This module provides the alternative so the
//! trade-off is measurable: a CSR container plus
//!
//! - [`CsrMatrix::spmm`] — `Z = X·W` with sparse `X` (the first-layer
//!   forward product, with `W` pre-transposed to `in×out`), and
//! - [`CsrMatrix::spmm_tn`] — `∇W = δᵀ·X` with sparse `X` (the first-layer
//!   weight gradient),
//!
//! which are exactly the two places sparsity pays off in a fully-connected
//! network (every later layer is dense).

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// Compressed sparse row matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `indices`/`values`; length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index of each stored value (ascending within a row).
    indices: Vec<u32>,
    /// Stored values.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from a dense matrix, storing entries with `|v| > threshold`.
    pub fn from_dense(dense: &Matrix, threshold: f32) -> Self {
        let (rows, cols) = dense.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v.abs() > threshold {
                    indices.push(j as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Build from (row, col, value) triplets (need not be sorted; duplicate
    /// positions are summed).
    ///
    /// # Panics
    /// Panics on out-of-bounds coordinates.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Self {
        let mut per_row: Vec<Vec<(u32, f32)>> = vec![Vec::new(); rows];
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            per_row[r].push((c as u32, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < row.len() {
                let (c, mut v) = row[k];
                let mut k2 = k + 1;
                while k2 < row.len() && row[k2].0 == c {
                    v += row[k2].1;
                    k2 += 1;
                }
                indices.push(c);
                values.push(v);
                k = k2;
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored (non-zero) entry count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored entries.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Iterate over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        self.indices[s..e]
            .iter()
            .zip(&self.values[s..e])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Convert back to dense.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Extract rows `start..end` as a new CSR matrix (the batch primitive).
    pub fn slice_rows(&self, start: usize, end: usize) -> CsrMatrix {
        assert!(start <= end && end <= self.rows, "row range");
        let (s, e) = (self.indptr[start], self.indptr[end]);
        let mut indptr: Vec<usize> = self.indptr[start..=end].to_vec();
        let base = indptr[0];
        indptr.iter_mut().for_each(|p| *p -= base);
        CsrMatrix {
            rows: end - start,
            cols: self.cols,
            indptr,
            indices: self.indices[s..e].to_vec(),
            values: self.values[s..e].to_vec(),
        }
    }

    /// `Z ← X·W` where `X` is this sparse `rows×cols` matrix and `W` is a
    /// **dense `cols×out`** matrix (a pre-transposed weight matrix).
    ///
    /// Complexity `O(nnz · out)` versus `O(rows · cols · out)` dense — the
    /// win is exactly the sparsity factor.
    pub fn spmm(&self, w: &Matrix) -> Matrix {
        assert_eq!(w.rows(), self.cols, "spmm inner dimension");
        let out = w.cols();
        let mut z = Matrix::zeros(self.rows, out);
        for i in 0..self.rows {
            let zi = z.row_mut(i);
            for (j, v) in row_pairs(&self.indptr, &self.indices, &self.values, i) {
                let wj = w.row(j);
                for (zo, wv) in zi.iter_mut().zip(wj) {
                    *zo += v * wv;
                }
            }
        }
        z
    }

    /// Rayon-parallel [`CsrMatrix::spmm`]: output rows are split across
    /// tasks (each task reads disjoint CSR rows and writes disjoint output
    /// rows — race-free by construction).
    pub fn par_spmm(&self, w: &Matrix) -> Matrix {
        use rayon::prelude::*;
        assert_eq!(w.rows(), self.cols, "spmm inner dimension");
        let out = w.cols();
        if self.rows * out < 1 << 14 {
            return self.spmm(w);
        }
        let mut z = Matrix::zeros(self.rows, out);
        let indptr = &self.indptr;
        let indices = &self.indices;
        let values = &self.values;
        z.as_mut_slice()
            .par_chunks_mut(out)
            .enumerate()
            .for_each(|(i, zi)| {
                for (j, v) in row_pairs(indptr, indices, values, i) {
                    let wj = w.row(j);
                    for (zo, wv) in zi.iter_mut().zip(wj) {
                        *zo += v * wv;
                    }
                }
            });
        z
    }

    /// `∇W ← δᵀ·X` where `δ` is dense `rows×out` and `X` is this sparse
    /// matrix; the result is `out×cols` (row-major, matching layer weights).
    pub fn spmm_tn(&self, delta: &Matrix) -> Matrix {
        assert_eq!(delta.rows(), self.rows, "spmm_tn row count");
        let out = delta.cols();
        let mut grad = Matrix::zeros(out, self.cols);
        for i in 0..self.rows {
            let di = delta.row(i);
            for (j, v) in row_pairs(&self.indptr, &self.indices, &self.values, i) {
                // grad[:, j] += v * delta[i, :]  (strided column write)
                for (o, &dv) in di.iter().enumerate() {
                    let g = grad.get(o, j) + v * dv;
                    grad.set(o, j, g);
                }
            }
        }
        grad
    }
}

#[inline]
fn row_pairs<'a>(
    indptr: &'a [usize],
    indices: &'a [u32],
    values: &'a [f32],
    i: usize,
) -> impl Iterator<Item = (usize, f32)> + 'a {
    let (s, e) = (indptr[i], indptr[i + 1]);
    indices[s..e]
        .iter()
        .zip(&values[s..e])
        .map(|(&c, &v)| (c as usize, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 4.0],
        ])
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let s = CsrMatrix::from_triplets(2, 3, vec![(0, 1, 1.0), (0, 1, 2.0), (1, 2, 5.0)]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense().get(0, 1), 3.0);
        assert_eq!(s.to_dense().get(1, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplets_bounds_checked() {
        CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn row_iter_yields_sorted_pairs() {
        let s = CsrMatrix::from_dense(&sample_dense(), 0.0);
        let row0: Vec<_> = s.row_iter(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(s.row_iter(1).count(), 0);
    }

    #[test]
    fn slice_rows_matches_dense_slice() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d, 0.0);
        let sl = s.slice_rows(1, 3);
        assert_eq!(sl.to_dense(), d.slice_rows(1, 3));
        assert_eq!(sl.nnz(), 2);
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let x = sample_dense();
        let sx = CsrMatrix::from_dense(&x, 0.0);
        let w = Matrix::from_fn(4, 5, |i, j| ((i * 5 + j) as f32 * 0.3).sin());
        let sparse_z = sx.spmm(&w);
        let mut dense_z = Matrix::zeros(3, 5);
        gemm::gemm_nn(1.0, &x, &w, 0.0, &mut dense_z);
        assert!(sparse_z.approx_eq(&dense_z, 1e-5));
    }

    #[test]
    fn spmm_tn_matches_dense_gemm() {
        let x = sample_dense();
        let sx = CsrMatrix::from_dense(&x, 0.0);
        let delta = Matrix::from_fn(3, 6, |i, j| ((i + j) as f32 * 0.7).cos());
        let sparse_g = sx.spmm_tn(&delta);
        let mut dense_g = Matrix::zeros(6, 4);
        gemm::gemm_tn(1.0, &delta, &x, 0.0, &mut dense_g);
        assert!(sparse_g.approx_eq(&dense_g, 1e-5));
    }

    #[test]
    fn par_spmm_matches_serial() {
        // Large enough to take the parallel path.
        let x = Matrix::from_fn(200, 120, |i, j| {
            if (i * 7 + j * 13) % 9 == 0 {
                ((i + j) as f32 * 0.1).sin()
            } else {
                0.0
            }
        });
        let sx = CsrMatrix::from_dense(&x, 0.0);
        let w = Matrix::from_fn(120, 100, |i, j| ((i * 3 + j) as f32 * 0.05).cos());
        let serial = sx.spmm(&w);
        let parallel = sx.par_spmm(&w);
        assert!(serial.approx_eq(&parallel, 1e-5));
    }

    #[test]
    fn threshold_filters_small_entries() {
        let d = Matrix::from_rows(&[&[0.05, 1.0, -0.02]]);
        let s = CsrMatrix::from_dense(&d, 0.1);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense().get(0, 1), 1.0);
    }

    #[test]
    fn empty_matrix_ok() {
        let s = CsrMatrix::from_dense(&Matrix::zeros(0, 0), 0.0);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.density(), 0.0);
    }
}
