//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the single dense container used throughout the workspace:
//! training batches, layer weights, activations, and gradients are all
//! matrices. Rows are contiguous, which matches both the batch layout the
//! paper's coordinator hands out (a batch is a contiguous range of example
//! rows) and the access pattern of the blocked GEMM in [`crate::gemm`].

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Reshape in place to `rows × cols`, reusing the existing allocation
    /// whenever the capacity suffices.
    ///
    /// Existing element values are **not** meaningful after the call (the
    /// prefix keeps stale data, any grown tail is zero) — callers are
    /// expected to overwrite the whole matrix, e.g. via a β=0 GEMM. This is
    /// the building block for the reusable training workspaces: steady-state
    /// reshapes to the same (or smaller) size never touch the allocator.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copy `other`'s shape and contents into `self`, reusing the existing
    /// allocation when possible (allocation-free once warmed up).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.resize(other.data.len(), 0.0);
        self.data.copy_from_slice(&other.data);
    }

    /// Current buffer capacity in elements (used by workspace reuse
    /// debug-assertions to detect unexpected reallocation).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices (all rows must have equal length).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Checked element access.
    pub fn try_get(&self, i: usize, j: usize) -> Result<f32, TensorError> {
        if i >= self.rows {
            return Err(TensorError::OutOfBounds {
                axis: "row",
                index: i,
                len: self.rows,
            });
        }
        if j >= self.cols {
            return Err(TensorError::OutOfBounds {
                axis: "col",
                index: j,
                len: self.cols,
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy of column `j` as a `Vec`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// New matrix containing rows `range.start..range.end` (no copy of other rows).
    ///
    /// This is the "batch extraction" primitive: the paper's coordinator
    /// passes batches as contiguous row ranges of the training matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Borrowed view of rows `start..end` as a flat slice.
    pub fn rows_slice(&self, start: usize, end: usize) -> &[f32] {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        &self.data[start * self.cols..end * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True iff every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Fill with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Approximate equality with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn eye_is_identity() {
        let m = Matrix::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_get_set() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        m.set(1, 0, 9.0);
        assert_eq!(m.get(1, 0), 9.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn try_get_bounds() {
        let m = Matrix::zeros(2, 3);
        assert!(m.try_get(1, 2).is_ok());
        assert!(matches!(
            m.try_get(2, 0),
            Err(TensorError::OutOfBounds { axis: "row", .. })
        ));
        assert!(matches!(
            m.try_get(0, 3),
            Err(TensorError::OutOfBounds { axis: "col", .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t.transpose(), m);
        assert_eq!(t.get(3, 2), m.get(2, 3));
    }

    #[test]
    fn slice_rows_extracts_batch() {
        let m = Matrix::from_fn(10, 3, |i, _| i as f32);
        let b = m.slice_rows(4, 7);
        assert_eq!(b.shape(), (3, 3));
        assert_eq!(b.get(0, 0), 4.0);
        assert_eq!(b.get(2, 2), 6.0);
        assert_eq!(m.rows_slice(4, 7).len(), 9);
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn slice_rows_out_of_bounds_panics() {
        Matrix::zeros(3, 3).slice_rows(2, 5);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.all_finite());
        let bad = Matrix::from_rows(&[&[f32::NAN]]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::full(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0005);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f32);
        let rows: Vec<&[f32]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], &[6.0, 7.0]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::full(2, 2, 5.0);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }
}
