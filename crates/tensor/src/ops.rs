//! Element-wise and reduction kernels.
//!
//! These cover everything an MLP training step needs besides GEMM: scaled
//! vector updates (the SGD update itself is an axpy), activations applied
//! in-place, per-row softmax, and the reductions used by loss evaluation.
//!
//! The hot paths (axpy/scale, hadamard, bias broadcast, column sums,
//! activation apply + derivative multiply) dispatch through
//! [`crate::simd::active_level`] like the GEMM kernels do. The *linear* SIMD
//! kernels use separate mul/add in scalar element order, so they are
//! bit-identical to the portable loops; only the transcendental activations
//! (sigmoid/tanh, vectorized with a polynomial `exp`) differ from the scalar
//! path, within ~1e-6 — tests that compare dispatch paths use a tolerance
//! for those two and exact equality everywhere else.

use crate::simd::{self, SimdLevel};
use crate::Matrix;

/// `y ← y + alpha * x` over raw slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::axpy(alpha, x, y),
        SimdLevel::Scalar => {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi += alpha * xi;
            }
        }
    }
}

/// `y ← alpha * x + beta * y` over raw slices (generalized axpby).
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::axpby(alpha, x, beta, y),
        SimdLevel::Scalar => {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = alpha * xi + beta * *yi;
            }
        }
    }
}

/// Scale a slice in place.
pub fn scale(alpha: f32, x: &mut [f32]) {
    match simd::active_level() {
        SimdLevel::Avx2 => simd::scale(alpha, x),
        SimdLevel::Scalar => x.iter_mut().for_each(|v| *v *= alpha),
    }
}

/// Dot product of two slices.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Element-wise product `out ← a ⊙ b`.
pub fn hadamard(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    assert_eq!(a.shape(), out.shape(), "hadamard output shape mismatch");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::hadamard(a.as_slice(), b.as_slice(), out.as_mut_slice()),
        SimdLevel::Scalar => {
            for ((o, x), y) in out
                .as_mut_slice()
                .iter_mut()
                .zip(a.as_slice())
                .zip(b.as_slice())
            {
                *o = x * y;
            }
        }
    }
}

/// In-place element-wise product `a ← a ⊙ b`.
pub fn hadamard_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::hadamard_assign(a.as_mut_slice(), b.as_slice()),
        SimdLevel::Scalar => {
            for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *x *= y;
            }
        }
    }
}

/// `a ← a + b`.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    axpy(1.0, b.as_slice(), a.as_mut_slice());
}

/// `a ← a - b`.
pub fn sub_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    axpy(-1.0, b.as_slice(), a.as_mut_slice());
}

/// Add a row vector (bias) to every row of `m`.
pub fn add_row_broadcast(m: &mut Matrix, row: &[f32]) {
    assert_eq!(m.cols(), row.len(), "broadcast width mismatch");
    let cols = m.cols();
    add_row_broadcast_slice(m.as_mut_slice(), cols, row);
}

/// [`add_row_broadcast`] over a raw row-major buffer with `cols` columns.
pub fn add_row_broadcast_slice(m: &mut [f32], cols: usize, row: &[f32]) {
    assert_eq!(cols, row.len(), "broadcast width mismatch");
    if cols == 0 {
        return;
    }
    assert_eq!(m.len() % cols, 0, "broadcast matrix dims");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::add_row_broadcast(m, cols, row),
        SimdLevel::Scalar => {
            for r in m.chunks_exact_mut(cols) {
                for (v, b) in r.iter_mut().zip(row) {
                    *v += b;
                }
            }
        }
    }
}

/// Column-wise sum of `m` (used for the bias gradient: sum of δ over the batch).
///
/// Allocates the output; the hot training path uses [`col_sum_into`].
pub fn col_sum(m: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols()];
    col_sum_into(m, &mut out);
    out
}

/// Column-wise sum of `m` written into a caller-owned buffer
/// (allocation-free variant of [`col_sum`]). `out` is overwritten.
///
/// # Panics
/// Panics if `out.len() != m.cols()`.
pub fn col_sum_into(m: &Matrix, out: &mut [f32]) {
    assert_eq!(out.len(), m.cols(), "col_sum output width mismatch");
    col_sum_slice(m.as_slice(), m.cols(), out);
}

/// [`col_sum_into`] over a raw row-major buffer with `cols` columns.
pub fn col_sum_slice(m: &[f32], cols: usize, out: &mut [f32]) {
    assert_eq!(out.len(), cols, "col_sum output width mismatch");
    out.iter_mut().for_each(|v| *v = 0.0);
    if cols == 0 || m.is_empty() {
        return;
    }
    assert_eq!(m.len() % cols, 0, "col_sum matrix dims");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::col_sum_into(m, cols, out),
        SimdLevel::Scalar => {
            for r in m.chunks_exact(cols) {
                for (o, v) in out.iter_mut().zip(r) {
                    *o += v;
                }
            }
        }
    }
}

/// Apply `f` to every element in place.
pub fn map_inplace(m: &mut Matrix, f: impl Fn(f32) -> f32) {
    m.as_mut_slice().iter_mut().for_each(|v| *v = f(*v));
}

/// Numerically-stable softmax applied to each row in place.
///
/// Subtracts the row max before exponentiating, then normalizes. Rows of an
/// all-`-inf` or empty matrix are left untouched.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    softmax_rows_slice(m.as_mut_slice(), cols);
}

/// [`softmax_rows`] over a raw row-major buffer with `cols` columns.
pub fn softmax_rows_slice(m: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    assert_eq!(m.len() % cols, 0, "softmax matrix dims");
    for row in m.chunks_exact_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            let inv = 1.0 / sum;
            row.iter_mut().for_each(|v| *v *= inv);
        }
    }
}

/// Logistic sigmoid applied element-wise in place: `σ(x) = 1/(1+e^{-x})`.
///
/// Written in the stable form that never exponentiates a large positive
/// argument. The SIMD path uses a polynomial `exp` accurate to ~1e-6.
pub fn sigmoid_inplace(m: &mut Matrix) {
    sigmoid_slice(m.as_mut_slice());
}

/// [`sigmoid_inplace`] over a raw buffer (used by the software GPU so both
/// devices run the identical dispatched kernel).
pub fn sigmoid_slice(xs: &mut [f32]) {
    match simd::active_level() {
        SimdLevel::Avx2 => simd::sigmoid(xs),
        SimdLevel::Scalar => xs.iter_mut().for_each(|v| {
            let x = *v;
            *v = if x >= 0.0 {
                1.0 / (1.0 + (-x).exp())
            } else {
                let e = x.exp();
                e / (1.0 + e)
            };
        }),
    }
}

/// Hyperbolic tangent applied element-wise in place.
pub fn tanh_inplace(m: &mut Matrix) {
    match simd::active_level() {
        SimdLevel::Avx2 => simd::tanh(m.as_mut_slice()),
        SimdLevel::Scalar => map_inplace(m, f32::tanh),
    }
}

/// ReLU applied element-wise in place: `max(x, 0)`.
pub fn relu_inplace(m: &mut Matrix) {
    match simd::active_level() {
        SimdLevel::Avx2 => simd::relu(m.as_mut_slice()),
        SimdLevel::Scalar => map_inplace(m, |x| x.max(0.0)),
    }
}

/// `delta ← delta ⊙ a·(1−a)` — backprop through sigmoid, where `output`
/// holds the *activated* values `a = σ(z)`.
pub fn mul_sigmoid_derivative(output: &Matrix, delta: &mut Matrix) {
    assert_eq!(output.shape(), delta.shape(), "derivative shape mismatch");
    mul_sigmoid_derivative_slice(output.as_slice(), delta.as_mut_slice());
}

/// [`mul_sigmoid_derivative`] over raw buffers.
pub fn mul_sigmoid_derivative_slice(output: &[f32], delta: &mut [f32]) {
    assert_eq!(output.len(), delta.len(), "derivative dims");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::mul_sigmoid_deriv(output, delta),
        SimdLevel::Scalar => {
            for (d, a) in delta.iter_mut().zip(output) {
                *d *= a * (1.0 - a);
            }
        }
    }
}

/// `delta ← delta ⊙ (1−a²)` — backprop through tanh from the activated output.
pub fn mul_tanh_derivative(output: &Matrix, delta: &mut Matrix) {
    assert_eq!(output.shape(), delta.shape(), "derivative shape mismatch");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::mul_tanh_deriv(output.as_slice(), delta.as_mut_slice()),
        SimdLevel::Scalar => {
            for (d, a) in delta.as_mut_slice().iter_mut().zip(output.as_slice()) {
                *d *= 1.0 - a * a;
            }
        }
    }
}

/// `delta ← delta · [a > 0]` — backprop through ReLU from the activated
/// output. Masked-out positions become `+0.0` on both dispatch paths.
pub fn mul_relu_derivative(output: &Matrix, delta: &mut Matrix) {
    assert_eq!(output.shape(), delta.shape(), "derivative shape mismatch");
    match simd::active_level() {
        SimdLevel::Avx2 => simd::mul_relu_deriv(output.as_slice(), delta.as_mut_slice()),
        SimdLevel::Scalar => {
            for (d, a) in delta.as_mut_slice().iter_mut().zip(output.as_slice()) {
                if *a <= 0.0 {
                    *d = 0.0;
                }
            }
        }
    }
}

/// Index of the maximum element of a slice (first on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in x.iter().enumerate().skip(1) {
        if *v > x[best] {
            best = i;
        }
    }
    best
}

/// Sum of all elements.
pub fn sum(m: &Matrix) -> f32 {
    m.as_slice().iter().sum()
}

/// Mean of all elements (0 for an empty matrix).
pub fn mean(m: &Matrix) -> f32 {
    if m.is_empty() {
        0.0
    } else {
        sum(m) / m.len() as f32
    }
}

/// Health-scan reduction: `(Σ x² over finite elements, NaN/±Inf count)`.
///
/// The sum uses f64 accumulators; the AVX2 path accumulates lane-parallel,
/// so the two dispatch paths agree to f64 rounding rather than bit-exactly.
/// Non-finite elements are excluded from the sum (and counted instead) so a
/// single poisoned value cannot collapse the whole norm to NaN. Read-only:
/// never perturbs the scanned buffer.
pub fn sumsq_nonfinite(x: &[f32]) -> (f64, u64) {
    let mut sumsq = 0.0f64;
    let mut nonfinite = 0u64;
    match simd::active_level() {
        SimdLevel::Avx2 => simd::sumsq_nonfinite(x, &mut sumsq, &mut nonfinite),
        SimdLevel::Scalar => {
            for &v in x {
                if v.is_finite() {
                    sumsq += v as f64 * v as f64;
                } else {
                    nonfinite += 1;
                }
            }
        }
    }
    (sumsq, nonfinite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_combines() {
        let x = [1.0, 1.0];
        let mut y = [2.0, 4.0];
        axpby(3.0, &x, 0.5, &mut y);
        assert_eq!(y, [4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_len_mismatch_panics() {
        axpy(1.0, &[1.0], &mut [1.0, 2.0]);
    }

    #[test]
    fn scale_and_dot() {
        let mut x = [1.0, 2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn hadamard_and_assign() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 2.0], &[0.5, 1.0]]);
        let mut out = Matrix::zeros(2, 2);
        hadamard(&a, &b, &mut out);
        assert_eq!(out, Matrix::from_rows(&[&[2.0, 4.0], &[1.5, 4.0]]));
        let mut a2 = a.clone();
        hadamard_assign(&mut a2, &b);
        assert_eq!(a2, out);
    }

    #[test]
    fn add_sub_assign() {
        let mut a = Matrix::full(2, 2, 3.0);
        let b = Matrix::full(2, 2, 1.0);
        add_assign(&mut a, &b);
        assert_eq!(a, Matrix::full(2, 2, 4.0));
        sub_assign(&mut a, &b);
        assert_eq!(a, Matrix::full(2, 2, 3.0));
    }

    #[test]
    fn bias_broadcast() {
        let mut m = Matrix::zeros(3, 2);
        add_row_broadcast(&mut m, &[1.0, -1.0]);
        for i in 0..3 {
            assert_eq!(m.row(i), &[1.0, -1.0]);
        }
    }

    #[test]
    fn col_sum_is_bias_gradient() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(col_sum(&m), vec![9.0, 12.0]);
    }

    #[test]
    fn softmax_rows_normalized() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        softmax_rows(&mut m);
        for i in 0..2 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
        // Monotonicity within a row.
        assert!(m.get(0, 2) > m.get(0, 1) && m.get(0, 1) > m.get(0, 0));
        // Huge but equal logits must not produce NaN (stability check).
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        let mut m = Matrix::from_rows(&[&[-100.0, 0.0, 100.0]]);
        sigmoid_inplace(&mut m);
        assert!(m.get(0, 0) >= 0.0 && m.get(0, 0) < 1e-6);
        assert!((m.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(m.get(0, 2) > 1.0 - 1e-6 && m.get(0, 2) <= 1.0);
        assert!(m.all_finite());
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn sum_and_mean() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum(&m), 10.0);
        assert_eq!(mean(&m), 2.5);
        assert_eq!(mean(&Matrix::zeros(0, 0)), 0.0);
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = Matrix::from_rows(&[&[1.0, -2.0]]);
        map_inplace(&mut m, |x| x.abs());
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn col_sum_into_matches_col_sum() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = vec![f32::NAN; 2]; // must be overwritten, not accumulated
        col_sum_into(&m, &mut out);
        assert_eq!(out, col_sum(&m));
    }

    #[test]
    fn tanh_and_relu_inplace() {
        let mut t = Matrix::from_rows(&[&[-1.0, 0.0, 1.0]]);
        tanh_inplace(&mut t);
        assert!((t.get(0, 0) - (-1.0f32).tanh()).abs() < 1e-5);
        assert!(t.get(0, 1).abs() < 1e-6);

        let mut r = Matrix::from_rows(&[&[-3.0, 0.0, 2.5]]);
        relu_inplace(&mut r);
        assert_eq!(r, Matrix::from_rows(&[&[0.0, 0.0, 2.5]]));
    }

    #[test]
    fn derivative_multiplies() {
        let a = Matrix::from_rows(&[&[0.25, 0.5, 0.75]]);
        let mut d = Matrix::from_rows(&[&[2.0, 2.0, 2.0]]);
        mul_sigmoid_derivative(&a, &mut d);
        for j in 0..3 {
            let av = a.get(0, j);
            assert!((d.get(0, j) - 2.0 * av * (1.0 - av)).abs() < 1e-6);
        }

        let mut dt = Matrix::from_rows(&[&[3.0, 3.0, 3.0]]);
        mul_tanh_derivative(&a, &mut dt);
        for j in 0..3 {
            let av = a.get(0, j);
            assert!((dt.get(0, j) - 3.0 * (1.0 - av * av)).abs() < 1e-6);
        }

        let mask = Matrix::from_rows(&[&[-1.0, 0.0, 5.0]]);
        let mut dr = Matrix::from_rows(&[&[-7.0, 7.0, 7.0]]);
        mul_relu_derivative(&mask, &mut dr);
        assert_eq!(dr.as_slice(), &[0.0, 0.0, 7.0]);
        // Masked-out lanes must be +0.0 on every dispatch path.
        assert_eq!(dr.get(0, 0).to_bits(), 0.0f32.to_bits());
    }

    /// Linear kernels must be bit-identical across dispatch paths;
    /// transcendental ones agree within 1e-6.
    #[test]
    fn dispatch_paths_agree() {
        use crate::simd::{with_level, SimdLevel};
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        // Odd length to exercise the vector tail.
        let x: Vec<f32> = (0..103).map(|_| next() * 4.0).collect();
        let y0: Vec<f32> = (0..103).map(|_| next()).collect();

        let run = |lvl: SimdLevel| {
            with_level(lvl, || {
                let mut y = y0.clone();
                axpy(0.37, &x, &mut y);
                axpby(1.1, &x, -0.4, &mut y);
                scale(0.93, &mut y);
                y
            })
        };
        assert_eq!(run(SimdLevel::Scalar), run(SimdLevel::Avx2));

        let act = |lvl: SimdLevel| {
            with_level(lvl, || {
                let mut m =
                    Matrix::from_fn(7, 13, |i, j| (i as f32 - 3.0) * (j as f32 - 6.0) / 5.0);
                sigmoid_inplace(&mut m);
                let mut t = Matrix::from_fn(7, 13, |i, j| (j as f32 - i as f32) / 3.0);
                tanh_inplace(&mut t);
                (m, t)
            })
        };
        let (s_scalar, t_scalar) = act(SimdLevel::Scalar);
        let (s_simd, t_simd) = act(SimdLevel::Avx2);
        for (a, b) in s_scalar
            .as_slice()
            .iter()
            .zip(s_simd.as_slice())
            .chain(t_scalar.as_slice().iter().zip(t_simd.as_slice()))
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
    #[test]
    fn sumsq_nonfinite_counts_and_sums() {
        use crate::simd::{with_level, SimdLevel};
        // 19 elements: vector body (16) + scalar tail (3), with poisoned
        // lanes in both regions.
        let mut x: Vec<f32> = (0..19).map(|i| (i as f32 - 9.0) / 4.0).collect();
        x[3] = f32::NAN;
        x[8] = f32::INFINITY;
        x[17] = f32::NEG_INFINITY;
        let expect_sum: f64 = x
            .iter()
            .filter(|v| v.is_finite())
            .map(|&v| v as f64 * v as f64)
            .sum();
        for lvl in [SimdLevel::Scalar, SimdLevel::Avx2] {
            let (s, bad) = with_level(lvl, || sumsq_nonfinite(&x));
            assert_eq!(bad, 3, "{lvl:?}");
            assert!(
                (s - expect_sum).abs() < 1e-9,
                "{lvl:?}: {s} vs {expect_sum}"
            );
        }
        assert_eq!(sumsq_nonfinite(&[]), (0.0, 0));
    }
}
