//! Element-wise and reduction kernels.
//!
//! These cover everything an MLP training step needs besides GEMM: scaled
//! vector updates (the SGD update itself is an axpy), activations applied
//! in-place, per-row softmax, and the reductions used by loss evaluation.

use crate::Matrix;

/// `y ← y + alpha * x` over raw slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← alpha * x + beta * y` over raw slices (generalized axpby).
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Scale a slice in place.
pub fn scale(alpha: f32, x: &mut [f32]) {
    x.iter_mut().for_each(|v| *v *= alpha);
}

/// Dot product of two slices.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Element-wise product `out ← a ⊙ b`.
pub fn hadamard(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    assert_eq!(a.shape(), out.shape(), "hadamard output shape mismatch");
    for ((o, x), y) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice())
        .zip(b.as_slice())
    {
        *o = x * y;
    }
}

/// In-place element-wise product `a ← a ⊙ b`.
pub fn hadamard_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
}

/// `a ← a + b`.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    axpy(1.0, b.as_slice(), a.as_mut_slice());
}

/// `a ← a - b`.
pub fn sub_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    axpy(-1.0, b.as_slice(), a.as_mut_slice());
}

/// Add a row vector (bias) to every row of `m`.
pub fn add_row_broadcast(m: &mut Matrix, row: &[f32]) {
    assert_eq!(m.cols(), row.len(), "broadcast width mismatch");
    let cols = m.cols();
    for r in m.as_mut_slice().chunks_exact_mut(cols) {
        for (v, b) in r.iter_mut().zip(row) {
            *v += b;
        }
    }
}

/// Column-wise sum of `m` (used for the bias gradient: sum of δ over the batch).
pub fn col_sum(m: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols()];
    for r in m.rows_iter() {
        for (o, v) in out.iter_mut().zip(r) {
            *o += v;
        }
    }
    out
}

/// Apply `f` to every element in place.
pub fn map_inplace(m: &mut Matrix, f: impl Fn(f32) -> f32) {
    m.as_mut_slice().iter_mut().for_each(|v| *v = f(*v));
}

/// Numerically-stable softmax applied to each row in place.
///
/// Subtracts the row max before exponentiating, then normalizes. Rows of an
/// all-`-inf` or empty matrix are left untouched.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            let inv = 1.0 / sum;
            row.iter_mut().for_each(|v| *v *= inv);
        }
    }
}

/// Logistic sigmoid applied element-wise in place: `σ(x) = 1/(1+e^{-x})`.
///
/// Written in the branch-free stable form that never exponentiates a large
/// positive argument.
pub fn sigmoid_inplace(m: &mut Matrix) {
    map_inplace(m, |x| {
        if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        }
    });
}

/// Index of the maximum element of a slice (first on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in x.iter().enumerate().skip(1) {
        if *v > x[best] {
            best = i;
        }
    }
    best
}

/// Sum of all elements.
pub fn sum(m: &Matrix) -> f32 {
    m.as_slice().iter().sum()
}

/// Mean of all elements (0 for an empty matrix).
pub fn mean(m: &Matrix) -> f32 {
    if m.is_empty() {
        0.0
    } else {
        sum(m) / m.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_combines() {
        let x = [1.0, 1.0];
        let mut y = [2.0, 4.0];
        axpby(3.0, &x, 0.5, &mut y);
        assert_eq!(y, [4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_len_mismatch_panics() {
        axpy(1.0, &[1.0], &mut [1.0, 2.0]);
    }

    #[test]
    fn scale_and_dot() {
        let mut x = [1.0, 2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn hadamard_and_assign() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 2.0], &[0.5, 1.0]]);
        let mut out = Matrix::zeros(2, 2);
        hadamard(&a, &b, &mut out);
        assert_eq!(out, Matrix::from_rows(&[&[2.0, 4.0], &[1.5, 4.0]]));
        let mut a2 = a.clone();
        hadamard_assign(&mut a2, &b);
        assert_eq!(a2, out);
    }

    #[test]
    fn add_sub_assign() {
        let mut a = Matrix::full(2, 2, 3.0);
        let b = Matrix::full(2, 2, 1.0);
        add_assign(&mut a, &b);
        assert_eq!(a, Matrix::full(2, 2, 4.0));
        sub_assign(&mut a, &b);
        assert_eq!(a, Matrix::full(2, 2, 3.0));
    }

    #[test]
    fn bias_broadcast() {
        let mut m = Matrix::zeros(3, 2);
        add_row_broadcast(&mut m, &[1.0, -1.0]);
        for i in 0..3 {
            assert_eq!(m.row(i), &[1.0, -1.0]);
        }
    }

    #[test]
    fn col_sum_is_bias_gradient() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(col_sum(&m), vec![9.0, 12.0]);
    }

    #[test]
    fn softmax_rows_normalized() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        softmax_rows(&mut m);
        for i in 0..2 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
        // Monotonicity within a row.
        assert!(m.get(0, 2) > m.get(0, 1) && m.get(0, 1) > m.get(0, 0));
        // Huge but equal logits must not produce NaN (stability check).
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        let mut m = Matrix::from_rows(&[&[-100.0, 0.0, 100.0]]);
        sigmoid_inplace(&mut m);
        assert!(m.get(0, 0) >= 0.0 && m.get(0, 0) < 1e-6);
        assert!((m.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(m.get(0, 2) > 1.0 - 1e-6 && m.get(0, 2) <= 1.0);
        assert!(m.all_finite());
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn sum_and_mean() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum(&m), 10.0);
        assert_eq!(mean(&m), 2.5);
        assert_eq!(mean(&Matrix::zeros(0, 0)), 0.0);
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = Matrix::from_rows(&[&[1.0, -2.0]]);
        map_inplace(&mut m, |x| x.abs());
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0]]));
    }
}
