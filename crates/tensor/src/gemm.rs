//! Single-precision general matrix multiply (SGEMM) kernels.
//!
//! The MLP passes need three transpose combinations:
//!
//! | call | computes | used for |
//! |---|---|---|
//! | [`gemm_nn`] | `C ← α·A·B + β·C` | backprop `δ·W`; hidden chains |
//! | [`gemm_tn`] | `C ← α·Aᵀ·B + β·C` | weight gradient: `∇W = δᵀ·X` |
//! | [`gemm_nt`] | `C ← α·A·Bᵀ + β·C` | forward with row-major weights `X·Wᵀ` |
//!
//! Each has a cache-blocked serial implementation and a rayon-parallel
//! wrapper ([`par_gemm_nn`], …) that splits the output rows across tasks:
//! tasks write disjoint row slices, so the parallelism is race-free by
//! construction (the rayon idiom from the workspace guides).
//!
//! All serial kernels (and therefore every per-task body of the parallel
//! wrappers) dispatch through [`crate::simd::active_level`]: AVX2+FMA
//! register-tiled microkernels where the CPU supports them, portable scalar
//! loops otherwise. The NN and TN paths stream *packed* operand panels —
//! BLIS-style copies into thread-local buffers (`pack_b_panel` /
//! `pack_a_panel`) so the SIMD inner loops read contiguous memory. The
//! pack buffers are reused across calls, so steady-state GEMMs allocate
//! nothing.
//!
//! [`gemm_nt_bias`] fuses the bias-add into the NT store epilogue
//! (`C = α·A·Bᵀ + bias` broadcast per row), saving one full pass over the
//! output in the forward pass.

use std::cell::RefCell;

use rayon::prelude::*;

use crate::simd::{self, SimdLevel};
use crate::Matrix;

/// Row-block size for parallel partitioning.
const PAR_ROW_BLOCK: usize = 32;
/// K-panel blocking to keep the streamed panel of `B` in L2.
pub(crate) const KB: usize = 256;
/// J-panel blocking (columns of C/B) to keep the C row segment in L1.
const JB: usize = 512;

/// Minimum problem size (in multiply-adds, `m·n·k`) for the `par_gemm_*`
/// wrappers to fan out across rayon tasks.
///
/// Below this the fork/join overhead of the pool outweighs the work: a
/// 64³ product is ~260k FMAs ≈ a few microseconds, about the cost of
/// dispatching a handful of rayon tasks. Smaller problems run the serial
/// kernel inline on the calling thread.
pub const PAR_MIN_MADDS: usize = 64 * 64 * 64;

thread_local! {
    /// Reused B-panel pack buffer (≤ `KB·16` floats; see `pack_b_panel`).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reused A-panel pack buffer for the TN kernel (see `pack_a_panel`).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Copy the `kblen×jw` strip `B[kb.., jb..jb+jw]` into `pack`
/// row-contiguously (`pack[kk·jw + c] = B[kb+kk, jb+c]`): the BLIS-style
/// B-panel the NN microkernel streams.
pub(crate) fn pack_b_panel(
    b: &[f32],
    n: usize,
    kb: usize,
    kblen: usize,
    jb: usize,
    jw: usize,
    pack: &mut Vec<f32>,
) {
    pack.resize(kblen * jw, 0.0);
    for kk in 0..kblen {
        let src = &b[(kb + kk) * n + jb..(kb + kk) * n + jb + jw];
        pack[kk * jw..(kk + 1) * jw].copy_from_slice(src);
    }
}

/// Transpose-pack the `kblen×ilen` block `A[kb.., i_start..i_start+ilen]`
/// into `pack` so row `i` of the chunk holds its k-slice contiguously
/// (`pack[i·kblen + kk] = A[kb+kk, i_start+i]`). Lets the TN kernel walk
/// both operands unit-stride.
pub(crate) fn pack_a_panel(
    a: &[f32],
    m: usize,
    kb: usize,
    kblen: usize,
    i_start: usize,
    ilen: usize,
    pack: &mut Vec<f32>,
) {
    pack.resize(ilen * kblen, 0.0);
    for kk in 0..kblen {
        let src = &a[(kb + kk) * m + i_start..(kb + kk) * m + i_start + ilen];
        for (i, &v) in src.iter().enumerate() {
            pack[i * kblen + kk] = v;
        }
    }
}

#[inline]
fn check(op: &'static str, m: usize, n: usize, k: usize, kb: usize, c: &Matrix) {
    assert_eq!(k, kb, "{op}: inner dimensions differ ({k} vs {kb})");
    assert_eq!(
        c.shape(),
        (m, n),
        "{op}: output shape {:?} != ({m}, {n})",
        c.shape()
    );
}

#[inline]
fn scale_c(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
}

// ---------------------------------------------------------------------------
// NN
// ---------------------------------------------------------------------------

/// Scalar blocked kernel for `C[i,:] += alpha * sum_k A[i,k] B[k,:]` over a
/// row range of C. `a_rows` is the slice of A covering the same row range.
fn kernel_nn_scalar(alpha: f32, a_rows: &[f32], b: &[f32], n: usize, k: usize, c_rows: &mut [f32]) {
    if n == 0 || k == 0 || c_rows.is_empty() {
        return;
    }
    let rows = c_rows.len() / n;
    for kb in (0..k).step_by(KB) {
        let kend = (kb + KB).min(k);
        for jb in (0..n).step_by(JB) {
            let jend = (jb + JB).min(n);
            for i in 0..rows {
                let a_row = &a_rows[i * k..(i + 1) * k];
                let c_row = &mut c_rows[i * n + jb..i * n + jend];
                for kk in kb..kend {
                    // No zero-skip branch here: it defeats vectorization of
                    // the inner loop and mispredicts on dense data.
                    let aik = alpha * a_row[kk];
                    let b_row = &b[kk * n + jb..kk * n + jend];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// Dispatched serial NN kernel body (no β handling).
fn kernel_nn(alpha: f32, a_rows: &[f32], b: &[f32], n: usize, k: usize, c_rows: &mut [f32]) {
    if n == 0 || k == 0 || c_rows.is_empty() {
        return;
    }
    match simd::active_level() {
        SimdLevel::Avx2 => PACK_B.with_borrow_mut(|pack| {
            simd::gemm_nn(alpha, a_rows, b, n, k, c_rows, pack);
        }),
        SimdLevel::Scalar => kernel_nn_scalar(alpha, a_rows, b, n, k, c_rows),
    }
}

/// `C ← α·A·B + β·C` (serial, cache-blocked).
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `c.shape() != (a.rows(), b.cols())`.
pub fn gemm_nn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    check("gemm_nn", m, n, k, kb, c);
    gemm_nn_slices(
        alpha,
        a.as_slice(),
        b.as_slice(),
        beta,
        c.as_mut_slice(),
        m,
        k,
        n,
    );
}

/// Slice-level `C ← α·A·B + β·C`: `a` is `m×k`, `b` is `k×n`, `c` is `m×n`,
/// all row-major. Lets callers that own raw buffers (the software GPU)
/// reach the dispatched kernels without copying into a [`Matrix`].
#[allow(clippy::too_many_arguments)] // BLAS-style slice API: the 8 args ARE the interface
pub fn gemm_nn_slices(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "gemm_nn_slices: A length");
    assert_eq!(b.len(), k * n, "gemm_nn_slices: B length");
    assert_eq!(c.len(), m * n, "gemm_nn_slices: C length");
    scale_c(beta, c);
    kernel_nn(alpha, a, b, n, k, c);
}

/// `C ← α·A·B + β·C`, output rows split across rayon tasks.
pub fn par_gemm_nn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    check("par_gemm_nn", m, n, k, kb, c);
    par_gemm_nn_slices(
        alpha,
        a.as_slice(),
        b.as_slice(),
        beta,
        c.as_mut_slice(),
        m,
        k,
        n,
    );
}

/// Parallel [`gemm_nn_slices`]: same layout contract, rows split across
/// rayon tasks (falls back to the serial kernel below [`PAR_MIN_MADDS`]).
#[allow(clippy::too_many_arguments)] // see gemm_nn_slices
pub fn par_gemm_nn_slices(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if m * n * k < PAR_MIN_MADDS {
        // Parallel dispatch costs more than it saves on tiny problems.
        gemm_nn_slices(alpha, a, b, beta, c, m, k, n);
        return;
    }
    assert_eq!(a.len(), m * k, "par_gemm_nn_slices: A length");
    assert_eq!(b.len(), k * n, "par_gemm_nn_slices: B length");
    assert_eq!(c.len(), m * n, "par_gemm_nn_slices: C length");
    c.par_chunks_mut(PAR_ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            scale_c(beta, c_rows);
            let row0 = blk * PAR_ROW_BLOCK;
            let rows = c_rows.len() / n;
            let a_rows = &a[row0 * k..(row0 + rows) * k];
            kernel_nn(alpha, a_rows, b, n, k, c_rows);
        });
}

// ---------------------------------------------------------------------------
// TN
// ---------------------------------------------------------------------------

/// Scalar rank-1-accumulation kernel for TN over an output row range
/// `[i0, i1)`. `c_rows` covers exactly those rows.
#[allow(clippy::too_many_arguments)]
fn kernel_tn_scalar(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    i1: usize,
    c_rows: &mut [f32],
) {
    for kb_ in (0..k).step_by(KB) {
        let kend = (kb_ + KB).min(k);
        for kk in kb_..kend {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for i in i0..i1 {
                // Unconditional rank-1 update: a zero-skip branch here
                // blocks vectorization (see kernel_nn_scalar).
                let aik = alpha * a_row[i];
                let c_row = &mut c_rows[(i - i0) * n..(i - i0 + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// Dispatched TN kernel body over rows `[i0, i1)` (no β handling).
#[allow(clippy::too_many_arguments)]
fn kernel_tn(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    i1: usize,
    c_rows: &mut [f32],
) {
    if n == 0 || k == 0 || i1 <= i0 {
        return;
    }
    match simd::active_level() {
        SimdLevel::Avx2 => PACK_A.with_borrow_mut(|pack| {
            simd::gemm_tn(alpha, a, b, m, n, k, i0, i1, c_rows, pack);
        }),
        SimdLevel::Scalar => kernel_tn_scalar(alpha, a, b, m, n, k, i0, i1, c_rows),
    }
}

/// `C ← α·Aᵀ·B + β·C` (serial).
///
/// `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
pub fn gemm_tn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    check("gemm_tn", m, n, ka, kb, c);
    gemm_tn_slices(
        alpha,
        a.as_slice(),
        b.as_slice(),
        beta,
        c.as_mut_slice(),
        ka,
        m,
        n,
    );
}

/// Slice-level `C ← α·Aᵀ·B + β·C`: `a` is `k×m`, `b` is `k×n`, `c` is
/// `m×n`, all row-major.
#[allow(clippy::too_many_arguments)] // see gemm_nn_slices
pub fn gemm_tn_slices(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    assert_eq!(a.len(), k * m, "gemm_tn_slices: A length");
    assert_eq!(b.len(), k * n, "gemm_tn_slices: B length");
    assert_eq!(c.len(), m * n, "gemm_tn_slices: C length");
    scale_c(beta, c);
    kernel_tn(alpha, a, b, m, n, k, 0, m, c);
}

/// `C ← α·Aᵀ·B + β·C`, output rows split across rayon tasks.
pub fn par_gemm_tn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    check("par_gemm_tn", m, n, ka, kb, c);
    par_gemm_tn_slices(
        alpha,
        a.as_slice(),
        b.as_slice(),
        beta,
        c.as_mut_slice(),
        ka,
        m,
        n,
    );
}

/// Parallel [`gemm_tn_slices`]: same layout contract, rows split across
/// rayon tasks (serial below [`PAR_MIN_MADDS`]).
#[allow(clippy::too_many_arguments)] // see gemm_nn_slices
pub fn par_gemm_tn_slices(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    if m * n * k < PAR_MIN_MADDS {
        gemm_tn_slices(alpha, a, b, beta, c, k, m, n);
        return;
    }
    assert_eq!(a.len(), k * m, "par_gemm_tn_slices: A length");
    assert_eq!(b.len(), k * n, "par_gemm_tn_slices: B length");
    assert_eq!(c.len(), m * n, "par_gemm_tn_slices: C length");
    c.par_chunks_mut(PAR_ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            scale_c(beta, c_rows);
            let i0 = blk * PAR_ROW_BLOCK;
            let i1 = i0 + c_rows.len() / n;
            kernel_tn(alpha, a, b, m, n, k, i0, i1, c_rows);
        });
}

// ---------------------------------------------------------------------------
// NT
// ---------------------------------------------------------------------------

fn kernel_nt_scalar(alpha: f32, a_rows: &[f32], b: &[f32], n: usize, k: usize, c_rows: &mut [f32]) {
    if n == 0 || k == 0 || c_rows.is_empty() {
        return;
    }
    let rows = c_rows.len() / n;
    for i in 0..rows {
        let a_row = &a_rows[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            // Four-way unrolled dot product; the tail is handled below.
            let chunks = k / 4;
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for c4 in 0..chunks {
                let p = c4 * 4;
                s0 += a_row[p] * b_row[p];
                s1 += a_row[p + 1] * b_row[p + 1];
                s2 += a_row[p + 2] * b_row[p + 2];
                s3 += a_row[p + 3] * b_row[p + 3];
            }
            for p in chunks * 4..k {
                acc += a_row[p] * b_row[p];
            }
            acc += (s0 + s1) + (s2 + s3);
            c_rows[i * n + j] += alpha * acc;
        }
    }
}

/// Scalar NT with the bias-add fused into the store (`C = α·A·Bᵀ + bias`).
fn kernel_nt_bias_scalar(
    alpha: f32,
    a_rows: &[f32],
    b: &[f32],
    bias: &[f32],
    n: usize,
    k: usize,
    c_rows: &mut [f32],
) {
    if n == 0 || c_rows.is_empty() {
        return;
    }
    let rows = c_rows.len() / n;
    for i in 0..rows {
        let a_row = &a_rows[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c_rows[i * n + j] = alpha * acc + bias[j];
        }
    }
}

/// Dispatched serial NT kernel body (no β handling).
fn kernel_nt(alpha: f32, a_rows: &[f32], b: &[f32], n: usize, k: usize, c_rows: &mut [f32]) {
    if n == 0 || k == 0 || c_rows.is_empty() {
        return;
    }
    match simd::active_level() {
        SimdLevel::Avx2 => simd::gemm_nt(alpha, a_rows, b, n, k, c_rows),
        SimdLevel::Scalar => kernel_nt_scalar(alpha, a_rows, b, n, k, c_rows),
    }
}

fn kernel_nt_bias(
    alpha: f32,
    a_rows: &[f32],
    b: &[f32],
    bias: &[f32],
    n: usize,
    k: usize,
    c_rows: &mut [f32],
) {
    if n == 0 || c_rows.is_empty() {
        return;
    }
    match simd::active_level() {
        SimdLevel::Avx2 => simd::gemm_nt_bias(alpha, a_rows, b, bias, n, k, c_rows),
        SimdLevel::Scalar => kernel_nt_bias_scalar(alpha, a_rows, b, bias, n, k, c_rows),
    }
}

/// `C ← α·A·Bᵀ + β·C` (serial).
///
/// `A` is `m×k`, `B` is `n×k`, `C` is `m×n`. Both operands are walked along
/// contiguous rows, so this is a dot-product kernel — the natural layout for
/// `X·Wᵀ` with row-major weight matrices `W[out][in]`.
pub fn gemm_nt(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check("gemm_nt", m, n, ka, kb, c);
    gemm_nt_slices(
        alpha,
        a.as_slice(),
        b.as_slice(),
        beta,
        c.as_mut_slice(),
        m,
        ka,
        n,
    );
}

/// Slice-level `C ← α·A·Bᵀ + β·C`: `a` is `m×k`, `b` is `n×k`, `c` is
/// `m×n`, all row-major.
#[allow(clippy::too_many_arguments)] // see gemm_nn_slices
pub fn gemm_nt_slices(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "gemm_nt_slices: A length");
    assert_eq!(b.len(), n * k, "gemm_nt_slices: B length");
    assert_eq!(c.len(), m * n, "gemm_nt_slices: C length");
    scale_c(beta, c);
    kernel_nt(alpha, a, b, n, k, c);
}

/// `C ← α·A·Bᵀ + bias` with the row-broadcast bias-add fused into the GEMM
/// epilogue (β = 0 semantics: `C` is overwritten). One pass over `C`
/// instead of a GEMM pass plus a broadcast pass.
///
/// # Panics
/// Panics on shape mismatch or `bias.len() != b.rows()`.
pub fn gemm_nt_bias(alpha: f32, a: &Matrix, b: &Matrix, bias: &[f32], c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check("gemm_nt_bias", m, n, ka, kb, c);
    assert_eq!(
        bias.len(),
        n,
        "gemm_nt_bias: bias length {} != {n}",
        bias.len()
    );
    kernel_nt_bias(
        alpha,
        a.as_slice(),
        b.as_slice(),
        bias,
        n,
        ka,
        c.as_mut_slice(),
    );
}

/// Parallel [`gemm_nt_bias`]: output rows split across rayon tasks.
pub fn par_gemm_nt_bias(alpha: f32, a: &Matrix, b: &Matrix, bias: &[f32], c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check("par_gemm_nt_bias", m, n, ka, kb, c);
    assert_eq!(
        bias.len(),
        n,
        "par_gemm_nt_bias: bias length {} != {n}",
        bias.len()
    );
    if m * n * ka < PAR_MIN_MADDS {
        kernel_nt_bias(
            alpha,
            a.as_slice(),
            b.as_slice(),
            bias,
            n,
            ka,
            c.as_mut_slice(),
        );
        return;
    }
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    c.as_mut_slice()
        .par_chunks_mut(PAR_ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            let row0 = blk * PAR_ROW_BLOCK;
            let rows = c_rows.len() / n;
            kernel_nt_bias(
                alpha,
                &a_s[row0 * ka..(row0 + rows) * ka],
                b_s,
                bias,
                n,
                ka,
                c_rows,
            );
        });
}

/// `C ← α·A·Bᵀ + β·C`, output rows split across rayon tasks.
pub fn par_gemm_nt(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check("par_gemm_nt", m, n, ka, kb, c);
    par_gemm_nt_slices(
        alpha,
        a.as_slice(),
        b.as_slice(),
        beta,
        c.as_mut_slice(),
        m,
        ka,
        n,
    );
}

/// Parallel [`gemm_nt_slices`]: same layout contract, rows split across
/// rayon tasks (serial below [`PAR_MIN_MADDS`]).
#[allow(clippy::too_many_arguments)] // see gemm_nn_slices
pub fn par_gemm_nt_slices(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if m * n * k < PAR_MIN_MADDS {
        gemm_nt_slices(alpha, a, b, beta, c, m, k, n);
        return;
    }
    assert_eq!(a.len(), m * k, "par_gemm_nt_slices: A length");
    assert_eq!(b.len(), n * k, "par_gemm_nt_slices: B length");
    assert_eq!(c.len(), m * n, "par_gemm_nt_slices: C length");
    c.par_chunks_mut(PAR_ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            scale_c(beta, c_rows);
            let row0 = blk * PAR_ROW_BLOCK;
            let rows = c_rows.len() / n;
            kernel_nt(alpha, &a[row0 * k..(row0 + rows) * k], b, n, k, c_rows);
        });
}

/// Reference implementation used by tests: naive triple loop, `C = α·op(A)·op(B) + β·C`.
pub fn gemm_reference(
    alpha: f32,
    a: &Matrix,
    ta: bool,
    b: &Matrix,
    tb: bool,
    beta: f32,
    c: &mut Matrix,
) {
    // Only materialize a transposed copy when one is actually requested.
    let at;
    let a = if ta {
        at = a.transpose();
        &at
    } else {
        a
    };
    let bt;
    let b = if tb {
        bt = b.transpose();
        &bt
    } else {
        b
    };
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    assert_eq!(c.shape(), (m, n));
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a.get(i, kk) as f64 * b.get(kk, j) as f64;
            }
            let v = beta as f64 * c.get(i, j) as f64 + alpha as f64 * acc;
            c.set(i, j, v as f32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the tensor crate needs no rand dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn nn_matches_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 33, 9), (64, 48, 80)] {
            let a = rand_mat(m, k, 1);
            let b = rand_mat(k, n, 2);
            let mut c = rand_mat(m, n, 3);
            let mut c_ref = c.clone();
            gemm_nn(0.7, &a, &b, 0.3, &mut c);
            gemm_reference(0.7, &a, false, &b, false, 0.3, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn tn_matches_reference() {
        for &(m, k, n) in &[(4, 6, 5), (31, 17, 13), (70, 65, 64)] {
            let a = rand_mat(k, m, 4); // A is k×m, used transposed
            let b = rand_mat(k, n, 5);
            let mut c = rand_mat(m, n, 6);
            let mut c_ref = c.clone();
            gemm_tn(1.3, &a, &b, -0.5, &mut c);
            gemm_reference(1.3, &a, true, &b, false, -0.5, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn nt_matches_reference() {
        for &(m, k, n) in &[(4, 6, 5), (29, 15, 31), (64, 100, 64)] {
            let a = rand_mat(m, k, 7);
            let b = rand_mat(n, k, 8); // B is n×k, used transposed
            let mut c = rand_mat(m, n, 9);
            let mut c_ref = c.clone();
            gemm_nt(0.9, &a, &b, 1.0, &mut c);
            gemm_reference(0.9, &a, false, &b, true, 1.0, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn nt_bias_fusion_matches_unfused() {
        for &(m, k, n) in &[(1, 3, 2), (13, 29, 17), (33, 64, 40)] {
            let a = rand_mat(m, k, 12);
            let b = rand_mat(n, k, 13);
            let bias: Vec<f32> = (0..n).map(|j| (j as f32 * 0.37).sin()).collect();
            let mut fused = Matrix::full(m, n, f32::NAN); // must be overwritten
            gemm_nt_bias(1.0, &a, &b, &bias, &mut fused);
            let mut split = Matrix::zeros(m, n);
            gemm_nt(1.0, &a, &b, 0.0, &mut split);
            crate::ops::add_row_broadcast(&mut split, &bias);
            assert_close(&fused, &split, 1e-5);
            let mut par = Matrix::full(m, n, f32::NAN);
            par_gemm_nt_bias(1.0, &a, &b, &bias, &mut par);
            assert_close(&par, &split, 1e-5);
        }
    }

    #[test]
    fn slice_entry_points_match_matrix_api() {
        let (m, k, n) = (9, 14, 11);
        let a = rand_mat(m, k, 30);
        let b = rand_mat(k, n, 31);
        let mut c1 = rand_mat(m, n, 32);
        let mut c2 = c1.clone();
        gemm_nn(0.6, &a, &b, 0.4, &mut c1);
        gemm_nn_slices(
            0.6,
            a.as_slice(),
            b.as_slice(),
            0.4,
            c2.as_mut_slice(),
            m,
            k,
            n,
        );
        assert_eq!(c1, c2);

        let bt = b.transpose(); // n×k
        let mut c3 = rand_mat(m, n, 34);
        let mut c3_ref = c3.clone();
        gemm_nt(0.8, &a, &bt, 0.2, &mut c3_ref);
        gemm_nt_slices(
            0.8,
            a.as_slice(),
            bt.as_slice(),
            0.2,
            c3.as_mut_slice(),
            m,
            k,
            n,
        );
        assert_eq!(c3, c3_ref);

        // A is m×k used transposed: result is k×n from a (m×n) right operand.
        let x = rand_mat(m, n, 33);
        let mut c4 = Matrix::zeros(k, n);
        let mut c4_ref = Matrix::zeros(k, n);
        gemm_tn(1.0, &a, &x, 0.0, &mut c4_ref);
        gemm_tn_slices(
            1.0,
            a.as_slice(),
            x.as_slice(),
            0.0,
            c4.as_mut_slice(),
            m,
            k,
            n,
        );
        assert_eq!(c4, c4_ref);
    }

    #[test]
    fn parallel_matches_serial() {
        let (m, k, n) = (130, 70, 90);
        let a = rand_mat(m, k, 10);
        let b = rand_mat(k, n, 11);
        let bt = b.transpose();
        let at = a.transpose();

        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        gemm_nn(1.0, &a, &b, 0.0, &mut c1);
        par_gemm_nn(1.0, &a, &b, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-5);

        let mut c3 = Matrix::zeros(m, n);
        par_gemm_nt(1.0, &a, &bt, 0.0, &mut c3);
        assert_close(&c1, &c3, 1e-4);

        let mut c4 = Matrix::zeros(m, n);
        par_gemm_tn(1.0, &at, &b, 0.0, &mut c4);
        assert_close(&c1, &c4, 1e-4);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta = 0 must ignore pre-existing garbage (including NaN), like BLAS.
        let a = Matrix::eye(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::full(2, 2, f32::NAN);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&b, 1e-6));
    }

    #[test]
    fn identity_is_noop() {
        let a = rand_mat(9, 9, 20);
        let mut c = Matrix::zeros(9, 9);
        gemm_nn(1.0, &a, &Matrix::eye(9), 0.0, &mut c);
        assert_close(&c, &a, 1e-6);
        let mut c2 = Matrix::zeros(9, 9);
        gemm_nn(1.0, &Matrix::eye(9), &a, 0.0, &mut c2);
        assert_close(&c2, &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic(expected = "output shape")]
    fn mismatched_output_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(3, 3);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn empty_matrices_ok() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        let mut c = Matrix::zeros(0, 0);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.is_empty());
    }
}
