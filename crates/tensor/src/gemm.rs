//! Single-precision general matrix multiply (SGEMM) kernels.
//!
//! The MLP passes need three transpose combinations:
//!
//! | call | computes | used for |
//! |---|---|---|
//! | [`gemm_nn`] | `C ← α·A·B + β·C` | forward: `Z = X·Wᵀ` is expressed as NT; hidden chains |
//! | [`gemm_tn`] | `C ← α·Aᵀ·B + β·C` | weight gradient: `∇W = δᵀ·X` |
//! | [`gemm_nt`] | `C ← α·A·Bᵀ + β·C` | forward with row-major weights; backprop `δ·W` |
//!
//! Each has a cache-blocked serial implementation and a rayon-parallel
//! wrapper ([`par_gemm_nn`], …) that splits the output rows across tasks:
//! tasks write disjoint row slices, so the parallelism is race-free by
//! construction (the rayon idiom from the workspace guides).
//!
//! The inner kernel iterates `i, k, j` so the innermost loop walks both `B`
//! and `C` contiguously — this auto-vectorizes well and is the standard
//! row-major micro-kernel shape.

use rayon::prelude::*;

use crate::Matrix;

/// Row-block size for parallel partitioning.
const PAR_ROW_BLOCK: usize = 32;
/// K-panel blocking to keep the streamed panel of `B` in L2.
const KB: usize = 256;
/// J-panel blocking (columns of C/B) to keep the C row segment in L1.
const JB: usize = 512;

#[inline]
fn check(op: &'static str, m: usize, n: usize, k: usize, kb: usize, c: &Matrix) {
    assert_eq!(k, kb, "{op}: inner dimensions differ ({k} vs {kb})");
    assert_eq!(
        c.shape(),
        (m, n),
        "{op}: output shape {:?} != ({m}, {n})",
        c.shape()
    );
}

#[inline]
fn scale_c(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
}

/// Serial blocked kernel for `C[i,:] += alpha * sum_k A[i,k] B[k,:]` over a
/// row range of C. `a_rows` is the slice of A covering the same row range.
fn kernel_nn(alpha: f32, a_rows: &[f32], b: &[f32], n: usize, k: usize, c_rows: &mut [f32]) {
    if n == 0 || k == 0 || c_rows.is_empty() {
        return;
    }
    let rows = c_rows.len() / n;
    for kb in (0..k).step_by(KB) {
        let kend = (kb + KB).min(k);
        for jb in (0..n).step_by(JB) {
            let jend = (jb + JB).min(n);
            for i in 0..rows {
                let a_row = &a_rows[i * k..(i + 1) * k];
                let c_row = &mut c_rows[i * n + jb..i * n + jend];
                for kk in kb..kend {
                    let aik = alpha * a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n + jb..kk * n + jend];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// `C ← α·A·B + β·C` (serial, cache-blocked).
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `c.shape() != (a.rows(), b.cols())`.
pub fn gemm_nn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    check("gemm_nn", m, n, k, kb, c);
    scale_c(beta, c.as_mut_slice());
    kernel_nn(alpha, a.as_slice(), b.as_slice(), n, k, c.as_mut_slice());
}

/// `C ← α·A·B + β·C`, output rows split across rayon tasks.
pub fn par_gemm_nn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    check("par_gemm_nn", m, n, k, kb, c);
    if m * n * k < 64 * 64 * 64 {
        // Parallel dispatch costs more than it saves on tiny problems.
        gemm_nn(alpha, a, b, beta, c);
        return;
    }
    let bs = b.as_slice();
    let a_all = a.as_slice();
    c.as_mut_slice()
        .par_chunks_mut(PAR_ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            scale_c(beta, c_rows);
            let row0 = blk * PAR_ROW_BLOCK;
            let rows = c_rows.len() / n;
            let a_rows = &a_all[row0 * k..(row0 + rows) * k];
            kernel_nn(alpha, a_rows, bs, n, k, c_rows);
        });
}

/// `C ← α·Aᵀ·B + β·C` (serial).
///
/// `A` is `k×m`, `B` is `k×n`, `C` is `m×n`. Implemented by iterating k in
/// the outer loop (each k contributes a rank-1 update), blocked over k.
pub fn gemm_tn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    check("gemm_tn", m, n, ka, kb, c);
    scale_c(beta, c.as_mut_slice());
    kernel_tn(
        alpha,
        a.as_slice(),
        b.as_slice(),
        m,
        n,
        ka,
        0,
        m,
        c.as_mut_slice(),
    );
}

/// Rank-1-accumulation kernel for TN over an output row range `[i0, i1)`.
/// `c_rows` covers exactly those rows.
#[allow(clippy::too_many_arguments)]
fn kernel_tn(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    i1: usize,
    c_rows: &mut [f32],
) {
    for kb_ in (0..k).step_by(KB) {
        let kend = (kb_ + KB).min(k);
        for kk in kb_..kend {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for i in i0..i1 {
                let aik = alpha * a_row[i];
                if aik == 0.0 {
                    continue;
                }
                let c_row = &mut c_rows[(i - i0) * n..(i - i0 + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// `C ← α·Aᵀ·B + β·C`, output rows split across rayon tasks.
pub fn par_gemm_tn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    check("par_gemm_tn", m, n, ka, kb, c);
    if m * n * ka < 64 * 64 * 64 {
        gemm_tn(alpha, a, b, beta, c);
        return;
    }
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    c.as_mut_slice()
        .par_chunks_mut(PAR_ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            scale_c(beta, c_rows);
            let i0 = blk * PAR_ROW_BLOCK;
            let i1 = i0 + c_rows.len() / n;
            kernel_tn(alpha, a_s, b_s, m, n, ka, i0, i1, c_rows);
        });
}

/// `C ← α·A·Bᵀ + β·C` (serial).
///
/// `A` is `m×k`, `B` is `n×k`, `C` is `m×n`. Both operands are walked along
/// contiguous rows, so this is a dot-product kernel — the natural layout for
/// `X·Wᵀ` with row-major weight matrices `W[out][in]`.
pub fn gemm_nt(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check("gemm_nt", m, n, ka, kb, c);
    scale_c(beta, c.as_mut_slice());
    kernel_nt(alpha, a.as_slice(), b.as_slice(), n, ka, c.as_mut_slice());
}

fn kernel_nt(alpha: f32, a_rows: &[f32], b: &[f32], n: usize, k: usize, c_rows: &mut [f32]) {
    if n == 0 || k == 0 || c_rows.is_empty() {
        return;
    }
    let rows = c_rows.len() / n;
    for i in 0..rows {
        let a_row = &a_rows[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            // Four-way unrolled dot product; the tail is handled below.
            let chunks = k / 4;
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for c4 in 0..chunks {
                let p = c4 * 4;
                s0 += a_row[p] * b_row[p];
                s1 += a_row[p + 1] * b_row[p + 1];
                s2 += a_row[p + 2] * b_row[p + 2];
                s3 += a_row[p + 3] * b_row[p + 3];
            }
            for p in chunks * 4..k {
                acc += a_row[p] * b_row[p];
            }
            acc += (s0 + s1) + (s2 + s3);
            c_rows[i * n + j] += alpha * acc;
        }
    }
}

/// `C ← α·A·Bᵀ + β·C`, output rows split across rayon tasks.
pub fn par_gemm_nt(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check("par_gemm_nt", m, n, ka, kb, c);
    if m * n * ka < 64 * 64 * 64 {
        gemm_nt(alpha, a, b, beta, c);
        return;
    }
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    c.as_mut_slice()
        .par_chunks_mut(PAR_ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            scale_c(beta, c_rows);
            let row0 = blk * PAR_ROW_BLOCK;
            let rows = c_rows.len() / n;
            kernel_nt(
                alpha,
                &a_s[row0 * ka..(row0 + rows) * ka],
                b_s,
                n,
                ka,
                c_rows,
            );
        });
}

/// Reference implementation used by tests: naive triple loop, `C = α·op(A)·op(B) + β·C`.
pub fn gemm_reference(
    alpha: f32,
    a: &Matrix,
    ta: bool,
    b: &Matrix,
    tb: bool,
    beta: f32,
    c: &mut Matrix,
) {
    let a = if ta { a.transpose() } else { a.clone() };
    let b = if tb { b.transpose() } else { b.clone() };
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    assert_eq!(c.shape(), (m, n));
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a.get(i, kk) as f64 * b.get(kk, j) as f64;
            }
            let v = beta as f64 * c.get(i, j) as f64 + alpha as f64 * acc;
            c.set(i, j, v as f32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the tensor crate needs no rand dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn nn_matches_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 33, 9), (64, 48, 80)] {
            let a = rand_mat(m, k, 1);
            let b = rand_mat(k, n, 2);
            let mut c = rand_mat(m, n, 3);
            let mut c_ref = c.clone();
            gemm_nn(0.7, &a, &b, 0.3, &mut c);
            gemm_reference(0.7, &a, false, &b, false, 0.3, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn tn_matches_reference() {
        for &(m, k, n) in &[(4, 6, 5), (31, 17, 13), (70, 65, 64)] {
            let a = rand_mat(k, m, 4); // A is k×m, used transposed
            let b = rand_mat(k, n, 5);
            let mut c = rand_mat(m, n, 6);
            let mut c_ref = c.clone();
            gemm_tn(1.3, &a, &b, -0.5, &mut c);
            gemm_reference(1.3, &a, true, &b, false, -0.5, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn nt_matches_reference() {
        for &(m, k, n) in &[(4, 6, 5), (29, 15, 31), (64, 100, 64)] {
            let a = rand_mat(m, k, 7);
            let b = rand_mat(n, k, 8); // B is n×k, used transposed
            let mut c = rand_mat(m, n, 9);
            let mut c_ref = c.clone();
            gemm_nt(0.9, &a, &b, 1.0, &mut c);
            gemm_reference(0.9, &a, false, &b, true, 1.0, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (m, k, n) = (130, 70, 90);
        let a = rand_mat(m, k, 10);
        let b = rand_mat(k, n, 11);
        let bt = b.transpose();
        let at = a.transpose();

        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        gemm_nn(1.0, &a, &b, 0.0, &mut c1);
        par_gemm_nn(1.0, &a, &b, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-5);

        let mut c3 = Matrix::zeros(m, n);
        par_gemm_nt(1.0, &a, &bt, 0.0, &mut c3);
        assert_close(&c1, &c3, 1e-4);

        let mut c4 = Matrix::zeros(m, n);
        par_gemm_tn(1.0, &at, &b, 0.0, &mut c4);
        assert_close(&c1, &c4, 1e-4);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta = 0 must ignore pre-existing garbage (including NaN), like BLAS.
        let a = Matrix::eye(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::full(2, 2, f32::NAN);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&b, 1e-6));
    }

    #[test]
    fn identity_is_noop() {
        let a = rand_mat(9, 9, 20);
        let mut c = Matrix::zeros(9, 9);
        gemm_nn(1.0, &a, &Matrix::eye(9), 0.0, &mut c);
        assert_close(&c, &a, 1e-6);
        let mut c2 = Matrix::zeros(9, 9);
        gemm_nn(1.0, &Matrix::eye(9), &a, 0.0, &mut c2);
        assert_close(&c2, &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic(expected = "output shape")]
    fn mismatched_output_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(3, 3);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn empty_matrices_ok() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        let mut c = Matrix::zeros(0, 0);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.is_empty());
    }
}
