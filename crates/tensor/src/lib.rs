//! # hetero-tensor
//!
//! Dense linear-algebra kernels for the hetero-sgd workspace.
//!
//! The paper's framework relies on Intel MKL (CPU side) and cuBLAS (GPU
//! side) for the matrix products that dominate fully-connected DNN training.
//! This crate is the self-contained replacement: a row-major [`Matrix`] type
//! plus cache-blocked, optionally rayon-parallel single-precision GEMM in all
//! the transpose combinations the MLP forward/backward passes need
//! (`A·B`, `Aᵀ·B`, `A·Bᵀ`), together with the element-wise and reduction
//! kernels (axpy, scale, hadamard, row-softmax, …).
//!
//! Design notes:
//! - Everything is `f32`: that is what both the paper and GPU training use.
//! - Blocking parameters are chosen for typical L1/L2 sizes (Table I of the
//!   paper); they are compile-time constants in [`gemm`].
//! - Parallel variants split the *output* row range across rayon tasks, so
//!   each task writes a disjoint slice — no synchronization needed.
//!
//! ```
//! use hetero_tensor::{Matrix, gemm};
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let mut c = Matrix::zeros(2, 2);
//! gemm::gemm_nn(1.0, &a, &b, 0.0, &mut c);
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]

pub mod gemm;
pub mod matrix;
pub mod ops;
pub mod simd;
pub mod sparse;

pub use matrix::Matrix;
pub use sparse::CsrMatrix;

/// Error type for shape mismatches and invalid tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left/first operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right/second operand (rows, cols).
        rhs: (usize, usize),
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Which axis the index addressed.
        axis: &'static str,
        /// The offending index.
        index: usize,
        /// The axis length.
        len: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::OutOfBounds { axis, index, len } => {
                write!(f, "{axis} index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = TensorError::ShapeMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("gemm"));
        let e = TensorError::OutOfBounds {
            axis: "row",
            index: 7,
            len: 3,
        };
        assert!(e.to_string().contains("7"));
    }
}
