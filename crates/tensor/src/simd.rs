//! Runtime-dispatched SIMD kernels (AVX2 + FMA) with scalar fallbacks.
//!
//! The GEMM and element-wise hot loops in [`crate::gemm`] and [`crate::ops`]
//! dispatch through [`active_level`]: on an x86-64 host where
//! `is_x86_feature_detected!` confirms AVX2 and FMA they run the explicit
//! 8-lane (`f32x8`) microkernels in this module; everywhere else they run
//! the portable scalar kernels that live next to the call sites.
//!
//! Dispatch is resolved once per process (a relaxed atomic memo) from CPU
//! detection plus the `HETERO_SIMD` environment variable:
//!
//! | `HETERO_SIMD` | effect |
//! |---|---|
//! | `0` / `off` / `scalar` | force the portable scalar path |
//! | `1` / `on` / `avx2` | request AVX2 (clamped to what the CPU supports) |
//! | unset / anything else | auto: use AVX2 iff detected |
//!
//! Tests and benches that need *both* paths in one process use
//! [`with_level`], a thread-scoped override (the global memo is shared
//! state; a scoped override keeps concurrently-running tests independent).
//!
//! Register-tile shapes (chosen so accumulators + operands fit the 16
//! ymm registers):
//!
//! - **NN** (`C += α·A·B`): 4×16 tiles — 4 broadcast lanes of `A` against a
//!   16-column strip of `B` that [`crate::gemm`] has packed contiguously
//!   (BLIS-style B-panel packing), 8 FMA accumulators.
//! - **NT** (`C += α·A·Bᵀ`): 4×2 dot-product tiles — both operands stream
//!   contiguous rows, 8 full-width partial-dot accumulators reduced
//!   horizontally once per tile.
//! - **TN** (`C += α·Aᵀ·B`): 2×16 tiles over an A panel that `gemm` packs
//!   transposed, so the k-loop reads both operands contiguously.
//!
//! Safety discipline: every `unsafe` block in this module carries a SAFETY
//! comment, and every function that touches an intrinsic is annotated
//! `#[target_feature(enable = "avx2,fma")]` — `cargo xtask lint` enforces
//! both rules.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel family [`active_level`] resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar kernels (the reference semantics).
    Scalar,
    /// AVX2 + FMA microkernels in this module.
    Avx2,
}

const UNRESOLVED: u8 = 0;
const LEVEL_SCALAR: u8 = 1;
const LEVEL_AVX2: u8 = 2;

// Ordering discipline for this file: `GLOBAL_LEVEL` is a write-once memo of
// a pure function of the host CPU and the `HETERO_SIMD` variable. Racing
// initializers compute identical values, and no other memory depends on the
// store, so every access can be `Relaxed` — atomicity alone is enough.
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(UNRESOLVED);

thread_local! {
    /// Thread-scoped override installed by [`with_level`]; `UNRESOLVED`
    /// means "defer to the global memo".
    static THREAD_OVERRIDE: Cell<u8> = const { Cell::new(UNRESOLVED) };
}

/// True when the running CPU supports the AVX2+FMA kernels.
pub fn host_supports_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn clamp_to_host(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Avx2 if host_supports_avx2() => LEVEL_AVX2,
        _ => LEVEL_SCALAR,
    }
}

#[cold]
fn resolve_global() -> u8 {
    let requested = match std::env::var("HETERO_SIMD").as_deref() {
        Ok("0") | Ok("off") | Ok("scalar") => SimdLevel::Scalar,
        _ => SimdLevel::Avx2, // auto and explicit "on" both clamp to the host
    };
    let level = clamp_to_host(requested);
    // Relaxed store: see the ordering note at the top of the file.
    GLOBAL_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// The kernel family the current thread should run.
///
/// Checks the thread-scoped [`with_level`] override first, then the cached
/// process-wide resolution (CPU detection + `HETERO_SIMD`).
#[inline]
pub fn active_level() -> SimdLevel {
    let t = THREAD_OVERRIDE.with(Cell::get);
    let raw = if t != UNRESOLVED {
        t
    } else {
        // Relaxed load: see the ordering note at the top of the file.
        match GLOBAL_LEVEL.load(Ordering::Relaxed) {
            UNRESOLVED => resolve_global(),
            resolved => resolved,
        }
    };
    if raw == LEVEL_AVX2 {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

/// Run `f` with the dispatch level forced for the current thread.
///
/// Requests for [`SimdLevel::Avx2`] are clamped to what the host supports,
/// so the closure can never execute instructions the CPU lacks. The
/// override does not propagate to threads spawned inside `f` (rayon tasks
/// fall back to the global resolution); use `HETERO_SIMD` to force a whole
/// process.
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(Cell::get);
    let _restore = Restore(prev);
    THREAD_OVERRIDE.with(|c| c.set(clamp_to_host(level)));
    f()
}

// ---------------------------------------------------------------------------
// Safe crate-internal entry points. `gemm`/`ops` call these only after
// `active_level()` returned `Avx2`, which implies the CPUID check passed.
// ---------------------------------------------------------------------------

macro_rules! avx2_entry {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* $(,)? )) => {
        $(#[$doc])*
        #[cfg(target_arch = "x86_64")]
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name($($arg: $ty),*) {
            // SAFETY: callers dispatch here only when `active_level()`
            // returned `Avx2`, which requires `is_x86_feature_detected!`
            // to have confirmed both AVX2 and FMA on this CPU.
            unsafe { imp::$name($($arg),*) }
        }
        $(#[$doc])*
        #[cfg(not(target_arch = "x86_64"))]
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name($(_: $ty),*) {
            unreachable!("AVX2 kernels are never dispatched off x86-64")
        }
    };
}

avx2_entry!(
    /// `C[rows×n] += α·A[rows×k]·B[n×k]ᵀ` (dot-product NT kernel).
    gemm_nt(alpha: f32, a_rows: &[f32], b: &[f32], n: usize, k: usize, c_rows: &mut [f32])
);
avx2_entry!(
    /// `C[rows×n] = α·A[rows×k]·B[n×k]ᵀ + bias` (NT with the bias-add fused
    /// into the store epilogue; overwrites `C`, i.e. β = 0 semantics).
    gemm_nt_bias(
        alpha: f32,
        a_rows: &[f32],
        b: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        c_rows: &mut [f32],
    )
);
avx2_entry!(
    /// `C[rows×n] += α·A[rows×k]·B[k×n]`, streaming B through the packed
    /// panel buffer `pack` (filled via `pack_b_panel` in `crate::gemm`).
    gemm_nn(
        alpha: f32,
        a_rows: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        c_rows: &mut [f32],
        pack: &mut Vec<f32>,
    )
);
avx2_entry!(
    /// `C[i0..i1, :] += α·(A[k×m])ᵀ·B[k×n]` over the row range `[i0, i1)`;
    /// `c_rows` covers exactly those rows. A panels are packed transposed
    /// into `pack` so the k-loop is contiguous on both operands.
    gemm_tn(
        alpha: f32,
        a: &[f32],
        b: &[f32],
        m: usize,
        n: usize,
        k: usize,
        i0: usize,
        i1: usize,
        c_rows: &mut [f32],
        pack: &mut Vec<f32>,
    )
);
avx2_entry!(
    /// `y += α·x` (mul+add, bit-identical to the scalar loop).
    axpy(alpha: f32, x: &[f32], y: &mut [f32])
);
avx2_entry!(
    /// `y = α·x + β·y` (bit-identical to the scalar loop).
    axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32])
);
avx2_entry!(
    /// `x *= α`.
    scale(alpha: f32, x: &mut [f32])
);
avx2_entry!(
    /// `a *= b` element-wise.
    hadamard_assign(a: &mut [f32], b: &[f32])
);
avx2_entry!(
    /// `out = a ⊙ b` element-wise.
    hadamard(a: &[f32], b: &[f32], out: &mut [f32])
);
avx2_entry!(
    /// Add `row` to every `cols`-wide row of `m`.
    add_row_broadcast(m: &mut [f32], cols: usize, row: &[f32])
);
avx2_entry!(
    /// Accumulate every `cols`-wide row of `m` into `out` (adds in row
    /// order, bit-identical to the scalar column sum).
    col_sum_into(m: &[f32], cols: usize, out: &mut [f32])
);
avx2_entry!(
    /// In-place logistic sigmoid via the polynomial `exp` (≈1e-7 relative
    /// accuracy; *not* bit-identical to the scalar libm path).
    sigmoid(xs: &mut [f32])
);
avx2_entry!(
    /// In-place tanh via the polynomial `exp` (≈1e-6 absolute accuracy).
    tanh(xs: &mut [f32])
);
avx2_entry!(
    /// In-place ReLU: `x = max(x, 0)`.
    relu(xs: &mut [f32])
);
avx2_entry!(
    /// `delta *= a·(1−a)` — sigmoid derivative from the stored output.
    mul_sigmoid_deriv(out: &[f32], delta: &mut [f32])
);
avx2_entry!(
    /// `delta *= 1−a²` — tanh derivative from the stored output.
    mul_tanh_deriv(out: &[f32], delta: &mut [f32])
);
avx2_entry!(
    /// `delta` zeroed wherever `a ≤ 0` — ReLU derivative.
    mul_relu_deriv(out: &[f32], delta: &mut [f32])
);
avx2_entry!(
    /// Health-scan reduction: adds `Σ x²` (finite lanes only, f64
    /// accumulators, lane-parallel order — *not* bit-identical to the
    /// sequential scalar sum) into `sumsq` and the number of NaN/±Inf
    /// lanes into `nonfinite`. Read-only over `x`: safe to run on racy
    /// shared buffers without perturbing training math.
    sumsq_nonfinite(x: &[f32], sumsq: &mut f64, nonfinite: &mut u64)
);

#[cfg(target_arch = "x86_64")]
mod imp {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    use crate::gemm::{pack_a_panel, pack_b_panel, KB};

    /// Row-chunk of packed A processed per TN panel (packed chunk =
    /// `TN_MC·KB` floats ≈ 64 KiB, comfortably L2-resident).
    const TN_MC: usize = 64;

    // --- tiny helpers ------------------------------------------------------

    /// Unaligned 8-lane load from `s[off..off+8]`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn load8(s: &[f32], off: usize) -> __m256 {
        debug_assert!(off + 8 <= s.len());
        // SAFETY: every caller advances `off` in steps of 8 while
        // `off + 8 <= s.len()` (debug-asserted); `loadu` needs no alignment.
        unsafe { _mm256_loadu_ps(s.as_ptr().add(off)) }
    }

    /// Unaligned 8-lane store to `s[off..off+8]`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn store8(s: &mut [f32], off: usize, v: __m256) {
        debug_assert!(off + 8 <= s.len());
        // SAFETY: same bounds discipline as `load8`.
        unsafe { _mm256_storeu_ps(s.as_mut_ptr().add(off), v) }
    }

    /// Horizontal sum of all 8 lanes.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn hsum(v: __m256) -> f32 {
        let q = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(d, _mm_shuffle_ps(d, d, 0b01));
        _mm_cvtss_f32(s)
    }

    /// Full-width dot product of `a[..k]·b[..k]` (vector body + scalar tail).
    #[target_feature(enable = "avx2,fma")]
    fn dot1(a: &[f32], b: &[f32], k: usize) -> f32 {
        let k8 = k & !7;
        let mut s = _mm256_setzero_ps();
        let mut p = 0;
        while p < k8 {
            s = _mm256_fmadd_ps(load8(a, p), load8(b, p), s);
            p += 8;
        }
        let mut d = hsum(s);
        for p in k8..k {
            d += a[p] * b[p];
        }
        d
    }

    // --- NT: C += alpha * A · Bᵀ  (dot-product kernel) ----------------------

    /// Shared NT body; `BIAS` selects the fused bias-add epilogue
    /// (`C = α·A·Bᵀ + bias`, overwriting) versus plain accumulation.
    #[target_feature(enable = "avx2,fma")]
    fn nt_body<const BIAS: bool>(
        alpha: f32,
        a_rows: &[f32],
        b: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        c_rows: &mut [f32],
    ) {
        if n == 0 || c_rows.is_empty() {
            return;
        }
        let rows = c_rows.len() / n;
        let k8 = k & !7;
        let mut i = 0;
        // 4×2 register tile: 8 partial-dot accumulators.
        while i + 4 <= rows {
            let a0 = &a_rows[i * k..(i + 1) * k];
            let a1 = &a_rows[(i + 1) * k..(i + 2) * k];
            let a2 = &a_rows[(i + 2) * k..(i + 3) * k];
            let a3 = &a_rows[(i + 3) * k..(i + 4) * k];
            let mut j = 0;
            while j + 2 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let mut s00 = _mm256_setzero_ps();
                let mut s01 = _mm256_setzero_ps();
                let mut s10 = _mm256_setzero_ps();
                let mut s11 = _mm256_setzero_ps();
                let mut s20 = _mm256_setzero_ps();
                let mut s21 = _mm256_setzero_ps();
                let mut s30 = _mm256_setzero_ps();
                let mut s31 = _mm256_setzero_ps();
                let mut p = 0;
                while p < k8 {
                    let vb0 = load8(b0, p);
                    let vb1 = load8(b1, p);
                    let va = load8(a0, p);
                    s00 = _mm256_fmadd_ps(va, vb0, s00);
                    s01 = _mm256_fmadd_ps(va, vb1, s01);
                    let va = load8(a1, p);
                    s10 = _mm256_fmadd_ps(va, vb0, s10);
                    s11 = _mm256_fmadd_ps(va, vb1, s11);
                    let va = load8(a2, p);
                    s20 = _mm256_fmadd_ps(va, vb0, s20);
                    s21 = _mm256_fmadd_ps(va, vb1, s21);
                    let va = load8(a3, p);
                    s30 = _mm256_fmadd_ps(va, vb0, s30);
                    s31 = _mm256_fmadd_ps(va, vb1, s31);
                    p += 8;
                }
                let mut d = [
                    hsum(s00),
                    hsum(s01),
                    hsum(s10),
                    hsum(s11),
                    hsum(s20),
                    hsum(s21),
                    hsum(s30),
                    hsum(s31),
                ];
                for p in k8..k {
                    let (b0p, b1p) = (b0[p], b1[p]);
                    d[0] += a0[p] * b0p;
                    d[1] += a0[p] * b1p;
                    d[2] += a1[p] * b0p;
                    d[3] += a1[p] * b1p;
                    d[4] += a2[p] * b0p;
                    d[5] += a2[p] * b1p;
                    d[6] += a3[p] * b0p;
                    d[7] += a3[p] * b1p;
                }
                for (r, pair) in d.chunks_exact(2).enumerate() {
                    let off = (i + r) * n + j;
                    if BIAS {
                        c_rows[off] = alpha * pair[0] + bias[j];
                        c_rows[off + 1] = alpha * pair[1] + bias[j + 1];
                    } else {
                        c_rows[off] += alpha * pair[0];
                        c_rows[off + 1] += alpha * pair[1];
                    }
                }
                j += 2;
            }
            if j < n {
                let bj = &b[j * k..(j + 1) * k];
                for (r, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
                    let v = alpha * dot1(ar, bj, k);
                    let off = (i + r) * n + j;
                    if BIAS {
                        c_rows[off] = v + bias[j];
                    } else {
                        c_rows[off] += v;
                    }
                }
            }
            i += 4;
        }
        // Row tail: plain vector dots.
        while i < rows {
            let ar = &a_rows[i * k..(i + 1) * k];
            for j in 0..n {
                let v = alpha * dot1(ar, &b[j * k..(j + 1) * k], k);
                let off = i * n + j;
                if BIAS {
                    c_rows[off] = v + bias[j];
                } else {
                    c_rows[off] += v;
                }
            }
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn gemm_nt(
        alpha: f32,
        a_rows: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        c_rows: &mut [f32],
    ) {
        nt_body::<false>(alpha, a_rows, b, &[], n, k, c_rows)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn gemm_nt_bias(
        alpha: f32,
        a_rows: &[f32],
        b: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        c_rows: &mut [f32],
    ) {
        nt_body::<true>(alpha, a_rows, b, bias, n, k, c_rows)
    }

    // --- NN: C += alpha * A · B over packed B panels ------------------------

    /// 16-column panel pass: rows of C gain `α·A[:, kb..kb+kblen]·panel`.
    /// `pack` holds the strip `B[kb.., jb..jb+16]` row-contiguously.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    fn nn_panel16(
        alpha_v: __m256,
        a_rows: &[f32],
        k: usize,
        kb: usize,
        kblen: usize,
        pack: &[f32],
        n: usize,
        jb: usize,
        c_rows: &mut [f32],
        rows: usize,
    ) {
        let mut i = 0;
        while i + 4 <= rows {
            let mut acc00 = _mm256_setzero_ps();
            let mut acc01 = _mm256_setzero_ps();
            let mut acc10 = _mm256_setzero_ps();
            let mut acc11 = _mm256_setzero_ps();
            let mut acc20 = _mm256_setzero_ps();
            let mut acc21 = _mm256_setzero_ps();
            let mut acc30 = _mm256_setzero_ps();
            let mut acc31 = _mm256_setzero_ps();
            for kk in 0..kblen {
                let vb0 = load8(pack, kk * 16);
                let vb1 = load8(pack, kk * 16 + 8);
                let va = _mm256_set1_ps(a_rows[i * k + kb + kk]);
                acc00 = _mm256_fmadd_ps(va, vb0, acc00);
                acc01 = _mm256_fmadd_ps(va, vb1, acc01);
                let va = _mm256_set1_ps(a_rows[(i + 1) * k + kb + kk]);
                acc10 = _mm256_fmadd_ps(va, vb0, acc10);
                acc11 = _mm256_fmadd_ps(va, vb1, acc11);
                let va = _mm256_set1_ps(a_rows[(i + 2) * k + kb + kk]);
                acc20 = _mm256_fmadd_ps(va, vb0, acc20);
                acc21 = _mm256_fmadd_ps(va, vb1, acc21);
                let va = _mm256_set1_ps(a_rows[(i + 3) * k + kb + kk]);
                acc30 = _mm256_fmadd_ps(va, vb0, acc30);
                acc31 = _mm256_fmadd_ps(va, vb1, acc31);
            }
            let accs = [
                (acc00, acc01),
                (acc10, acc11),
                (acc20, acc21),
                (acc30, acc31),
            ];
            for (r, (lo, hi)) in accs.into_iter().enumerate() {
                let off = (i + r) * n + jb;
                store8(
                    c_rows,
                    off,
                    _mm256_fmadd_ps(lo, alpha_v, load8(c_rows, off)),
                );
                store8(
                    c_rows,
                    off + 8,
                    _mm256_fmadd_ps(hi, alpha_v, load8(c_rows, off + 8)),
                );
            }
            i += 4;
        }
        while i < rows {
            let mut lo = _mm256_setzero_ps();
            let mut hi = _mm256_setzero_ps();
            for kk in 0..kblen {
                let va = _mm256_set1_ps(a_rows[i * k + kb + kk]);
                lo = _mm256_fmadd_ps(va, load8(pack, kk * 16), lo);
                hi = _mm256_fmadd_ps(va, load8(pack, kk * 16 + 8), hi);
            }
            let off = i * n + jb;
            store8(
                c_rows,
                off,
                _mm256_fmadd_ps(lo, alpha_v, load8(c_rows, off)),
            );
            store8(
                c_rows,
                off + 8,
                _mm256_fmadd_ps(hi, alpha_v, load8(c_rows, off + 8)),
            );
            i += 1;
        }
    }

    /// 8-column variant of [`nn_panel16`].
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    fn nn_panel8(
        alpha_v: __m256,
        a_rows: &[f32],
        k: usize,
        kb: usize,
        kblen: usize,
        pack: &[f32],
        n: usize,
        jb: usize,
        c_rows: &mut [f32],
        rows: usize,
    ) {
        let mut i = 0;
        while i + 4 <= rows {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for kk in 0..kblen {
                let vb = load8(pack, kk * 8);
                acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a_rows[i * k + kb + kk]), vb, acc0);
                acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a_rows[(i + 1) * k + kb + kk]), vb, acc1);
                acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a_rows[(i + 2) * k + kb + kk]), vb, acc2);
                acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a_rows[(i + 3) * k + kb + kk]), vb, acc3);
            }
            for (r, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let off = (i + r) * n + jb;
                store8(
                    c_rows,
                    off,
                    _mm256_fmadd_ps(acc, alpha_v, load8(c_rows, off)),
                );
            }
            i += 4;
        }
        while i < rows {
            let mut acc = _mm256_setzero_ps();
            for kk in 0..kblen {
                let va = _mm256_set1_ps(a_rows[i * k + kb + kk]);
                acc = _mm256_fmadd_ps(va, load8(pack, kk * 8), acc);
            }
            let off = i * n + jb;
            store8(
                c_rows,
                off,
                _mm256_fmadd_ps(acc, alpha_v, load8(c_rows, off)),
            );
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn gemm_nn(
        alpha: f32,
        a_rows: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        c_rows: &mut [f32],
        pack: &mut Vec<f32>,
    ) {
        if n == 0 || k == 0 || c_rows.is_empty() {
            return;
        }
        let rows = c_rows.len() / n;
        let alpha_v = _mm256_set1_ps(alpha);
        let n16 = n - n % 16;
        let n8 = n - n % 8;
        let mut jb = 0;
        while jb < n16 {
            for kb in (0..k).step_by(KB) {
                let kblen = KB.min(k - kb);
                pack_b_panel(b, n, kb, kblen, jb, 16, pack);
                nn_panel16(alpha_v, a_rows, k, kb, kblen, pack, n, jb, c_rows, rows);
            }
            jb += 16;
        }
        if jb < n8 {
            for kb in (0..k).step_by(KB) {
                let kblen = KB.min(k - kb);
                pack_b_panel(b, n, kb, kblen, jb, 8, pack);
                nn_panel8(alpha_v, a_rows, k, kb, kblen, pack, n, jb, c_rows, rows);
            }
            jb += 8;
        }
        if jb < n {
            // Sub-8-column remainder: plain scalar accumulation.
            for i in 0..rows {
                for kk in 0..k {
                    let aik = alpha * a_rows[i * k + kk];
                    let b_row = &b[kk * n..(kk + 1) * n];
                    let c_row = &mut c_rows[i * n..(i + 1) * n];
                    for j in jb..n {
                        c_row[j] += aik * b_row[j];
                    }
                }
            }
        }
    }

    // --- TN: C += alpha * Aᵀ · B over packed (transposed) A panels ----------

    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_tn(
        alpha: f32,
        a: &[f32],
        b: &[f32],
        m: usize,
        n: usize,
        k: usize,
        i0: usize,
        i1: usize,
        c_rows: &mut [f32],
        pack: &mut Vec<f32>,
    ) {
        if n == 0 || i1 <= i0 {
            return;
        }
        let alpha_v = _mm256_set1_ps(alpha);
        for kb in (0..k).step_by(KB) {
            let kblen = KB.min(k - kb);
            for ic in (i0..i1).step_by(TN_MC) {
                let ilen = TN_MC.min(i1 - ic);
                pack_a_panel(a, m, kb, kblen, ic, ilen, pack);
                tn_chunk(alpha_v, pack, kblen, ilen, b, n, kb, ic - i0, c_rows);
            }
        }
    }

    /// One packed-A chunk: `C[c_row0.., :] += α·packᵀ-rows·B[kb.., :]`.
    /// `pa` is `ilen×kblen` (row `i` of the chunk holds its k-slice
    /// contiguously).
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    fn tn_chunk(
        alpha_v: __m256,
        pa: &[f32],
        kblen: usize,
        ilen: usize,
        b: &[f32],
        n: usize,
        kb: usize,
        c_row0: usize,
        c_rows: &mut [f32],
    ) {
        let n16 = n - n % 16;
        let n8 = n - n % 8;
        let mut j = 0;
        while j < n16 {
            let mut i = 0;
            while i + 2 <= ilen {
                let a0 = &pa[i * kblen..(i + 1) * kblen];
                let a1 = &pa[(i + 1) * kblen..(i + 2) * kblen];
                let mut acc00 = _mm256_setzero_ps();
                let mut acc01 = _mm256_setzero_ps();
                let mut acc10 = _mm256_setzero_ps();
                let mut acc11 = _mm256_setzero_ps();
                for (kk, (&a0k, &a1k)) in a0.iter().zip(a1).enumerate() {
                    let off = (kb + kk) * n + j;
                    let vb0 = load8(b, off);
                    let vb1 = load8(b, off + 8);
                    let va0 = _mm256_set1_ps(a0k);
                    let va1 = _mm256_set1_ps(a1k);
                    acc00 = _mm256_fmadd_ps(va0, vb0, acc00);
                    acc01 = _mm256_fmadd_ps(va0, vb1, acc01);
                    acc10 = _mm256_fmadd_ps(va1, vb0, acc10);
                    acc11 = _mm256_fmadd_ps(va1, vb1, acc11);
                }
                let o0 = (c_row0 + i) * n + j;
                let o1 = o0 + n;
                store8(
                    c_rows,
                    o0,
                    _mm256_fmadd_ps(acc00, alpha_v, load8(c_rows, o0)),
                );
                store8(
                    c_rows,
                    o0 + 8,
                    _mm256_fmadd_ps(acc01, alpha_v, load8(c_rows, o0 + 8)),
                );
                store8(
                    c_rows,
                    o1,
                    _mm256_fmadd_ps(acc10, alpha_v, load8(c_rows, o1)),
                );
                store8(
                    c_rows,
                    o1 + 8,
                    _mm256_fmadd_ps(acc11, alpha_v, load8(c_rows, o1 + 8)),
                );
                i += 2;
            }
            if i < ilen {
                let a0 = &pa[i * kblen..(i + 1) * kblen];
                let mut lo = _mm256_setzero_ps();
                let mut hi = _mm256_setzero_ps();
                for (kk, &a0k) in a0.iter().enumerate() {
                    let off = (kb + kk) * n + j;
                    let va = _mm256_set1_ps(a0k);
                    lo = _mm256_fmadd_ps(va, load8(b, off), lo);
                    hi = _mm256_fmadd_ps(va, load8(b, off + 8), hi);
                }
                let o0 = (c_row0 + i) * n + j;
                store8(c_rows, o0, _mm256_fmadd_ps(lo, alpha_v, load8(c_rows, o0)));
                store8(
                    c_rows,
                    o0 + 8,
                    _mm256_fmadd_ps(hi, alpha_v, load8(c_rows, o0 + 8)),
                );
            }
            j += 16;
        }
        if j < n8 {
            for i in 0..ilen {
                let a0 = &pa[i * kblen..(i + 1) * kblen];
                let mut acc = _mm256_setzero_ps();
                for (kk, &a0k) in a0.iter().enumerate() {
                    acc = _mm256_fmadd_ps(_mm256_set1_ps(a0k), load8(b, (kb + kk) * n + j), acc);
                }
                let off = (c_row0 + i) * n + j;
                store8(
                    c_rows,
                    off,
                    _mm256_fmadd_ps(acc, alpha_v, load8(c_rows, off)),
                );
            }
            j += 8;
        }
        if j < n {
            // Sub-8-column remainder: scalar accumulation.
            for i in 0..ilen {
                let a0 = &pa[i * kblen..(i + 1) * kblen];
                let c_row = &mut c_rows[(c_row0 + i) * n..(c_row0 + i + 1) * n];
                for jc in j..n {
                    let mut s = 0.0f32;
                    for (kk, &a0k) in a0.iter().enumerate() {
                        s += a0k * b[(kb + kk) * n + jc];
                    }
                    // alpha is the same value broadcast in `alpha_v`.
                    let alpha = _mm_cvtss_f32(_mm256_castps256_ps128(alpha_v));
                    c_row[jc] += alpha * s;
                }
            }
        }
    }

    // --- element-wise kernels ----------------------------------------------
    //
    // The linear kernels use separate mul/add (never FMA) and walk elements
    // in the same order as the scalar loops, so their results are
    // bit-identical to the portable path. Only sigmoid/tanh (polynomial
    // exp) differ, within ~1e-6.

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let n8 = n & !7;
        let va = _mm256_set1_ps(alpha);
        let mut p = 0;
        while p < n8 {
            let v = _mm256_add_ps(load8(y, p), _mm256_mul_ps(va, load8(x, p)));
            store8(y, p, v);
            p += 8;
        }
        for p in n8..n {
            y[p] += alpha * x[p];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
        let n = x.len();
        let n8 = n & !7;
        let va = _mm256_set1_ps(alpha);
        let vb = _mm256_set1_ps(beta);
        let mut p = 0;
        while p < n8 {
            let v = _mm256_add_ps(
                _mm256_mul_ps(va, load8(x, p)),
                _mm256_mul_ps(vb, load8(y, p)),
            );
            store8(y, p, v);
            p += 8;
        }
        for p in n8..n {
            y[p] = alpha * x[p] + beta * y[p];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn scale(alpha: f32, x: &mut [f32]) {
        let n = x.len();
        let n8 = n & !7;
        let va = _mm256_set1_ps(alpha);
        let mut p = 0;
        while p < n8 {
            store8(x, p, _mm256_mul_ps(va, load8(x, p)));
            p += 8;
        }
        for v in &mut x[n8..] {
            *v *= alpha;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn hadamard_assign(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let n8 = n & !7;
        let mut p = 0;
        while p < n8 {
            store8(a, p, _mm256_mul_ps(load8(a, p), load8(b, p)));
            p += 8;
        }
        for p in n8..n {
            a[p] *= b[p];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = a.len();
        let n8 = n & !7;
        let mut p = 0;
        while p < n8 {
            store8(out, p, _mm256_mul_ps(load8(a, p), load8(b, p)));
            p += 8;
        }
        for p in n8..n {
            out[p] = a[p] * b[p];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn add_row_broadcast(m: &mut [f32], cols: usize, row: &[f32]) {
        let n8 = cols & !7;
        for r in m.chunks_exact_mut(cols) {
            let mut p = 0;
            while p < n8 {
                store8(r, p, _mm256_add_ps(load8(r, p), load8(row, p)));
                p += 8;
            }
            for p in n8..cols {
                r[p] += row[p];
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn col_sum_into(m: &[f32], cols: usize, out: &mut [f32]) {
        out.fill(0.0);
        if cols == 0 {
            return;
        }
        let n8 = cols & !7;
        for r in m.chunks_exact(cols) {
            let mut p = 0;
            while p < n8 {
                store8(out, p, _mm256_add_ps(load8(out, p), load8(r, p)));
                p += 8;
            }
            for p in n8..cols {
                out[p] += r[p];
            }
        }
    }

    /// Cephes-style polynomial `e^x` over the clamped f32 range
    /// (`x ∈ [-87.34, 88.38]`, degree-5 minimax in the reduced argument).
    #[target_feature(enable = "avx2,fma")]
    fn exp8(x: __m256) -> __m256 {
        let x = _mm256_min_ps(_mm256_set1_ps(88.376_26), x);
        let x = _mm256_max_ps(_mm256_set1_ps(-87.336_54), x);
        // n = round(x / ln 2); r = x − n·ln2 using a two-part ln2.
        let fx = _mm256_round_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E)),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        let r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693_359_4), x);
        let r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.121_944_4e-4), r);
        let r2 = _mm256_mul_ps(r, r);
        let mut y = _mm256_set1_ps(1.987_569_1e-4);
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.398_199_9e-3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.333_452e-3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.166_579_6e-2));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.666_666_5e-1));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(5.000_000_3e-1));
        y = _mm256_fmadd_ps(y, r2, r);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // Scale by 2^n through the exponent field.
        let n = _mm256_cvtps_epi32(fx);
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            n,
            _mm256_set1_epi32(0x7f),
        )));
        _mm256_mul_ps(y, pow2)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn sigmoid(xs: &mut [f32]) {
        let n = xs.len();
        let n8 = n & !7;
        let sign = _mm256_set1_ps(-0.0);
        let one = _mm256_set1_ps(1.0);
        let zero = _mm256_setzero_ps();
        let mut p = 0;
        while p < n8 {
            let x = load8(xs, p);
            // e = exp(−|x|) ∈ (0, 1]: never overflows, mirroring the
            // branch-free stable scalar form.
            let e = exp8(_mm256_or_ps(_mm256_andnot_ps(sign, x), sign));
            let denom = _mm256_add_ps(one, e);
            let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(x, zero);
            let num = _mm256_blendv_ps(e, one, ge);
            store8(xs, p, _mm256_div_ps(num, denom));
            p += 8;
        }
        for v in &mut xs[n8..] {
            let x = *v;
            *v = if x >= 0.0 {
                1.0 / (1.0 + (-x).exp())
            } else {
                let e = x.exp();
                e / (1.0 + e)
            };
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn tanh(xs: &mut [f32]) {
        let n = xs.len();
        let n8 = n & !7;
        let sign = _mm256_set1_ps(-0.0);
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        let mut p = 0;
        while p < n8 {
            let x = load8(xs, p);
            let xsign = _mm256_and_ps(sign, x);
            let ax = _mm256_andnot_ps(sign, x);
            // tanh(x) = sign(x) · (1 − e) / (1 + e) with e = exp(−2|x|).
            let e = exp8(_mm256_or_ps(_mm256_mul_ps(two, ax), sign));
            let t = _mm256_div_ps(_mm256_sub_ps(one, e), _mm256_add_ps(one, e));
            store8(xs, p, _mm256_or_ps(t, xsign));
            p += 8;
        }
        for v in &mut xs[n8..] {
            *v = v.tanh();
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn relu(xs: &mut [f32]) {
        let n = xs.len();
        let n8 = n & !7;
        let zero = _mm256_setzero_ps();
        let mut p = 0;
        while p < n8 {
            store8(xs, p, _mm256_max_ps(load8(xs, p), zero));
            p += 8;
        }
        for v in &mut xs[n8..] {
            *v = v.max(0.0);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn mul_sigmoid_deriv(out: &[f32], delta: &mut [f32]) {
        let n = out.len();
        let n8 = n & !7;
        let one = _mm256_set1_ps(1.0);
        let mut p = 0;
        while p < n8 {
            let a = load8(out, p);
            let d = _mm256_mul_ps(load8(delta, p), _mm256_mul_ps(a, _mm256_sub_ps(one, a)));
            store8(delta, p, d);
            p += 8;
        }
        for p in n8..n {
            delta[p] *= out[p] * (1.0 - out[p]);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn mul_tanh_deriv(out: &[f32], delta: &mut [f32]) {
        let n = out.len();
        let n8 = n & !7;
        let one = _mm256_set1_ps(1.0);
        let mut p = 0;
        while p < n8 {
            let a = load8(out, p);
            let d = _mm256_mul_ps(load8(delta, p), _mm256_sub_ps(one, _mm256_mul_ps(a, a)));
            store8(delta, p, d);
            p += 8;
        }
        for p in n8..n {
            delta[p] *= 1.0 - out[p] * out[p];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn mul_relu_deriv(out: &[f32], delta: &mut [f32]) {
        let n = out.len();
        let n8 = n & !7;
        let zero = _mm256_setzero_ps();
        let mut p = 0;
        while p < n8 {
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(load8(out, p), zero);
            store8(delta, p, _mm256_and_ps(load8(delta, p), mask));
            p += 8;
        }
        for p in n8..n {
            if out[p] <= 0.0 {
                delta[p] = 0.0;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) fn sumsq_nonfinite(x: &[f32], sumsq: &mut f64, nonfinite: &mut u64) {
        let n = x.len();
        let n8 = n & !7;
        // A float is non-finite iff its exponent field is all ones.
        let exp_mask = _mm256_set1_epi32(0x7f80_0000_u32 as i32);
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut bad = 0u64;
        let mut p = 0;
        while p < n8 {
            let v = load8(x, p);
            let exp = _mm256_and_si256(_mm256_castps_si256(v), exp_mask);
            let is_bad = _mm256_castsi256_ps(_mm256_cmpeq_epi32(exp, exp_mask));
            bad += _mm256_movemask_ps(is_bad).count_ones() as u64;
            // Zero the non-finite lanes so the norm reflects the finite part
            // (and never collapses to NaN when a single lane is poisoned).
            let v = _mm256_andnot_ps(is_bad, v);
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
            acc_lo = _mm256_fmadd_pd(lo, lo, acc_lo);
            acc_hi = _mm256_fmadd_pd(hi, hi, acc_hi);
            p += 8;
        }
        let acc = _mm256_add_pd(acc_lo, acc_hi);
        let q = _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
        let mut total = _mm_cvtsd_f64(_mm_add_sd(q, _mm_unpackhi_pd(q, q)));
        for &v in &x[n8..] {
            if v.is_finite() {
                total += v as f64 * v as f64;
            } else {
                bad += 1;
            }
        }
        *sumsq += total;
        *nonfinite += bad;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_level_scopes_and_restores() {
        let outer = active_level();
        with_level(SimdLevel::Scalar, || {
            assert_eq!(active_level(), SimdLevel::Scalar);
            with_level(SimdLevel::Avx2, || {
                // Clamped to the host; never panics either way.
                let l = active_level();
                assert_eq!(
                    l,
                    if host_supports_avx2() {
                        SimdLevel::Avx2
                    } else {
                        SimdLevel::Scalar
                    }
                );
            });
            assert_eq!(active_level(), SimdLevel::Scalar);
        });
        assert_eq!(active_level(), outer);
    }

    #[test]
    fn avx2_requests_clamp_to_host() {
        with_level(SimdLevel::Avx2, || {
            if !host_supports_avx2() {
                assert_eq!(active_level(), SimdLevel::Scalar);
            }
        });
    }
}
