//! Trace exporters: JSONL for ad-hoc tooling and Chrome `trace_event`
//! JSON for Perfetto / `chrome://tracing`.
//!
//! The Chrome exporter lays one track (tid) per worker under a single
//! process, pairs `BatchDispatched` → `BatchCompleted` into duration
//! (`"ph":"X"`) slices so each device gets a flame track, renders
//! transfers as duration slices too, and turns queue depth and loss into
//! Chrome counter (`"ph":"C"`) tracks. The sink's time domain is recorded
//! in the process name and in `otherData.timeDomain`, so virtual-clock
//! traces are clearly labelled as such.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use serde::{Serialize, Value};

use crate::event::{Event, EventKind, COORDINATOR};
use crate::sink::Trace;

/// Render a trace as JSON Lines: one meta line, then one event per line
/// in global time order.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    let meta = Value::Object(vec![(
        "meta".to_string(),
        Value::Object(vec![
            (
                "domain".to_string(),
                Value::Str(trace.domain.label().to_string()),
            ),
            ("shards".to_string(), Value::U64(trace.shards.len() as u64)),
            ("events".to_string(), Value::U64(trace.len() as u64)),
            ("dropped".to_string(), Value::U64(trace.total_dropped())),
            ("counters".to_string(), counters_object(trace)),
        ]),
    )]);
    out.push_str(&serde_json::to_string(&meta).expect("meta serializes"));
    out.push('\n');
    for event in trace.events_sorted() {
        out.push_str(&serde_json::to_string(&event.to_value()).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Write [`to_jsonl`] output to `path`.
pub fn write_jsonl(trace: &Trace, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_jsonl(trace).as_bytes())
}

fn counters_object(trace: &Trace) -> Value {
    Value::Object(
        trace
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect(),
    )
}

fn us(t: f64) -> Value {
    // Chrome expects microseconds; clamp tiny negative rounding artifacts.
    Value::F64((t * 1e6).max(0.0))
}

fn trace_event(
    name: &str,
    cat: &str,
    ph: &str,
    ts: Value,
    tid: u32,
    extra: Vec<(String, Value)>,
) -> Value {
    let mut obj = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("ts".to_string(), ts),
        ("pid".to_string(), Value::U64(0)),
        ("tid".to_string(), Value::U64(tid as u64)),
    ];
    obj.extend(extra);
    Value::Object(obj)
}

fn args(pairs: Vec<(&str, Value)>) -> (String, Value) {
    (
        "args".to_string(),
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
    )
}

fn instant(name: &str, cat: &str, event: &Event, extra: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![args(extra)];
    // Thread-scoped instant marker.
    fields.push(("s".to_string(), Value::Str("t".to_string())));
    trace_event(name, cat, "i", us(event.t), event.worker, fields)
}

/// Render a trace as Chrome `trace_event` JSON (Perfetto-loadable).
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::new();
    let sorted = trace.events_sorted();

    // Track names: one per worker plus the coordinator.
    let mut tids: Vec<u32> = sorted.iter().map(|e| e.worker).collect();
    tids.sort_unstable();
    tids.dedup();
    events.push(trace_event(
        "process_name",
        "__metadata",
        "M",
        Value::U64(0),
        0,
        vec![args(vec![(
            "name",
            Value::Str(format!("hetero-engine ({} time)", trace.domain.label())),
        )])],
    ));
    for &tid in &tids {
        let label = if tid == COORDINATOR {
            "coordinator".to_string()
        } else {
            format!("worker-{tid}")
        };
        events.push(trace_event(
            "thread_name",
            "__metadata",
            "M",
            Value::U64(0),
            tid,
            vec![args(vec![("name", Value::Str(label))])],
        ));
    }

    // Pair dispatch → completion into per-worker duration slices.
    let mut pending: HashMap<u32, (f64, usize)> = HashMap::new();
    for event in &sorted {
        match &event.kind {
            EventKind::BatchDispatched { batch } => {
                pending.insert(event.worker, (event.t, *batch));
            }
            EventKind::BatchCompleted { batch, updates } => match pending.remove(&event.worker) {
                Some((t0, dispatched)) if event.t >= t0 => {
                    events.push(trace_event(
                        "batch",
                        "batch",
                        "X",
                        us(t0),
                        event.worker,
                        vec![
                            ("dur".to_string(), Value::F64((event.t - t0) * 1e6)),
                            args(vec![
                                ("batch", Value::U64(*batch as u64)),
                                ("dispatched", Value::U64(dispatched as u64)),
                                ("updates", Value::U64(*updates as u64)),
                            ]),
                        ],
                    ));
                }
                _ => {
                    events.push(instant(
                        "batch_completed",
                        "batch",
                        event,
                        vec![
                            ("batch", Value::U64(*batch as u64)),
                            ("updates", Value::U64(*updates as u64)),
                        ],
                    ));
                }
            },
            EventKind::BatchResized { old, new, reason } => {
                events.push(instant(
                    "batch_resized",
                    "batch",
                    event,
                    vec![
                        ("old", Value::U64(*old as u64)),
                        ("new", Value::U64(*new as u64)),
                        ("reason", reason.to_value()),
                    ],
                ));
            }
            EventKind::QueuePushed { depth } | EventKind::QueuePopped { depth } => {
                events.push(trace_event(
                    "queue_depth",
                    "queue",
                    "C",
                    us(event.t),
                    0,
                    vec![args(vec![("depth", Value::U64(*depth as u64))])],
                ));
            }
            EventKind::H2d { bytes, secs } | EventKind::D2h { bytes, secs } => {
                let name = if matches!(event.kind, EventKind::H2d { .. }) {
                    "H2D"
                } else {
                    "D2H"
                };
                events.push(trace_event(
                    name,
                    "transfer",
                    "X",
                    us(event.t - secs),
                    event.worker,
                    vec![
                        ("dur".to_string(), Value::F64(secs * 1e6)),
                        args(vec![("bytes", Value::U64(*bytes as u64))]),
                    ],
                ));
            }
            EventKind::KernelLaunched { name } => {
                events.push(instant(
                    "kernel",
                    "kernel",
                    event,
                    vec![("kernel", Value::Str(name.clone()))],
                ));
            }
            EventKind::ModelMerge { scale } => {
                events.push(instant(
                    "model_merge",
                    "merge",
                    event,
                    vec![("scale", Value::F64(*scale))],
                ));
            }
            EventKind::EvalPoint { loss } => {
                events.push(trace_event(
                    "loss",
                    "eval",
                    "C",
                    us(event.t),
                    0,
                    vec![args(vec![("loss", Value::F64(*loss))])],
                ));
            }
            EventKind::WorkerFault { reason } => {
                events.push(instant(
                    "worker_fault",
                    "fault",
                    event,
                    vec![("reason", Value::Str(reason.clone()))],
                ));
            }
            EventKind::WorkerRetired { reason } => {
                events.push(instant(
                    "worker_retired",
                    "fault",
                    event,
                    vec![("reason", Value::Str(reason.clone()))],
                ));
            }
            EventKind::BatchRequeued { batch } => {
                events.push(instant(
                    "batch_requeued",
                    "batch",
                    event,
                    vec![("batch", Value::U64(*batch as u64))],
                ));
            }
            EventKind::HealthEvent { action, detail } => {
                events.push(instant(
                    "health",
                    "health",
                    event,
                    vec![
                        ("action", Value::Str(action.clone())),
                        ("detail", Value::Str(detail.clone())),
                    ],
                ));
            }
        }
    }

    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Object(vec![
                (
                    "timeDomain".to_string(),
                    Value::Str(trace.domain.label().to_string()),
                ),
                (
                    "droppedEvents".to_string(),
                    Value::U64(trace.total_dropped()),
                ),
                ("counters".to_string(), counters_object(trace)),
            ]),
        ),
    ]);
    serde_json::to_string(&root).expect("chrome trace serializes")
}

/// Write [`to_chrome_json`] output to `path`.
pub fn write_chrome(trace: &Trace, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_chrome_json(trace).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    fn sample_trace() -> Trace {
        let sink = TraceSink::virtual_time(64);
        sink.set_virtual_now(0.0);
        sink.emit(0, EventKind::BatchDispatched { batch: 64 });
        sink.set_virtual_now(0.5);
        sink.emit(
            0,
            EventKind::BatchCompleted {
                batch: 64,
                updates: 8,
            },
        );
        sink.emit(
            0,
            EventKind::BatchResized {
                old: 64,
                new: 80,
                reason: crate::event::ResizeReason::Ahead,
            },
        );
        sink.emit(
            1,
            EventKind::H2d {
                bytes: 1024,
                secs: 0.1,
            },
        );
        sink.emit(COORDINATOR, EventKind::EvalPoint { loss: 0.7 });
        sink.counter("test.counter").add(2);
        sink.drain()
    }

    #[test]
    fn jsonl_has_meta_plus_one_line_per_event() {
        let trace = sample_trace();
        let jsonl = to_jsonl(&trace);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + trace.len());
        assert!(lines[0].contains("\"domain\":\"virtual\""));
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("each line parses");
            assert!(matches!(v, Value::Object(_)));
        }
    }

    #[test]
    fn chrome_json_parses_and_pairs_batches() {
        let trace = sample_trace();
        let json = to_chrome_json(&trace);
        let root: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match root.get("traceEvents") {
            Some(Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Value::Str("X".to_string())))
            .collect();
        // One paired batch slice + one transfer slice.
        assert_eq!(complete.len(), 2);
        let batch = complete
            .iter()
            .find(|e| e.get("name") == Some(&Value::Str("batch".to_string())))
            .expect("batch slice");
        let dur = match batch.get("dur") {
            Some(Value::F64(x)) => *x,
            Some(Value::U64(n)) => *n as f64,
            other => panic!("dur missing: {other:?}"),
        };
        assert_eq!(dur, 0.5 * 1e6);
        assert_eq!(
            root.get("otherData").and_then(|o| o.get("timeDomain")),
            Some(&Value::Str("virtual".to_string()))
        );
    }
}
