//! The [`TraceSink`]: the single entry point both engines instrument
//! against.
//!
//! A sink is either *disabled* — a `None` inside, so every call is a branch
//! on an `Option` and nothing else — or *enabled*, holding shared state
//! behind an `Arc`. Enabled sinks give each emitting thread its own
//! bounded [`EventRing`](crate::ring::EventRing) (registered lazily through
//! a thread-local), so the per-event cost is an uncontended mutex lock and
//! a `VecDeque` push; threads never contend with each other, only with the
//! end-of-run drain.
//!
//! # Time domains
//!
//! The threaded engine stamps events with **wall** seconds since the sink
//! was created. The simulation engine runs on a virtual clock, so its
//! coordinator publishes the current virtual time with
//! [`TraceSink::set_virtual_now`] before emitting; both engines otherwise
//! share the identical emit API.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::counters::{CounterHandle, GaugeHandle, Registry};
use crate::event::{Event, EventKind};
use crate::ring::EventRing;

/// Which clock event timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeDomain {
    /// Wall-clock seconds since the sink was created (threaded engine).
    Wall,
    /// Virtual simulation seconds (discrete-event engine).
    Virtual,
}

impl TimeDomain {
    /// Lowercase label used by exporters.
    pub fn label(&self) -> &'static str {
        match self {
            TimeDomain::Wall => "wall",
            TimeDomain::Virtual => "virtual",
        }
    }
}

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (sink id, shard) pairs this thread has registered. Weak so a
    /// dropped sink's shards are freed and pruned on the next lookup.
    static LOCAL_SHARDS: RefCell<Vec<(u64, Weak<Shard>)>> =
        const { RefCell::new(Vec::new()) };
}

#[derive(Debug)]
struct Shard {
    label: String,
    ring: Mutex<EventRing>,
}

#[derive(Debug)]
struct SinkInner {
    id: u64,
    domain: TimeDomain,
    start: Instant,
    /// Current virtual time, as `f64` bits ([`TimeDomain::Virtual`] only).
    virtual_now: AtomicU64,
    ring_capacity: usize,
    shards: Mutex<Vec<Arc<Shard>>>,
    registry: Registry,
}

impl SinkInner {
    fn now(&self) -> f64 {
        match self.domain {
            TimeDomain::Wall => self.start.elapsed().as_secs_f64(),
            // Relaxed: the clock is advanced by one publisher and read
            // racily by instrumentation; no other memory depends on it.
            TimeDomain::Virtual => f64::from_bits(self.virtual_now.load(Ordering::Relaxed)),
        }
    }

    fn shard_for_this_thread(self: &Arc<Self>) -> Arc<Shard> {
        LOCAL_SHARDS.with(|local| {
            let mut local = local.borrow_mut();
            local.retain(|(_, weak)| weak.strong_count() > 0);
            if let Some((_, weak)) = local.iter().find(|(id, _)| *id == self.id) {
                if let Some(shard) = weak.upgrade() {
                    return shard;
                }
            }
            let mut shards = self.shards.lock();
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", shards.len()));
            let shard = Arc::new(Shard {
                label,
                ring: Mutex::new(EventRing::new(self.ring_capacity)),
            });
            shards.push(Arc::clone(&shard));
            drop(shards);
            local.push((self.id, Arc::downgrade(&shard)));
            shard
        })
    }
}

/// Everything one thread's ring held at drain time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardDump {
    /// Name of the thread that owned the ring.
    pub label: String,
    /// Buffered events in emit order.
    pub events: Vec<Event>,
    /// Events this ring evicted over its lifetime.
    pub dropped: u64,
}

/// A drained trace: per-thread event dumps plus a counter snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Clock the timestamps belong to.
    pub domain: TimeDomain,
    /// One dump per emitting thread.
    pub shards: Vec<ShardDump>,
    /// Counter/gauge values at drain time, sorted by name.
    pub counters: Vec<(String, f64)>,
}

impl Trace {
    /// All events, flattened and stably sorted by timestamp (ties keep
    /// shard registration order, so per-thread order is preserved).
    pub fn events_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| s.events.iter().cloned())
            .collect();
        all.sort_by(|a, b| a.t.total_cmp(&b.t));
        all
    }

    /// Total events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.events.len()).sum()
    }

    /// Whether no events were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events evicted across all shards.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }
}

/// Cloneable handle to a trace buffer, or a no-op when disabled.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// A sink that ignores everything; `emit` is a branch and a return.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// An enabled sink stamping wall seconds since this call.
    pub fn wall(ring_capacity: usize) -> Self {
        Self::enabled_with(TimeDomain::Wall, ring_capacity)
    }

    /// An enabled sink stamping virtual seconds; the simulation must call
    /// [`TraceSink::set_virtual_now`] as its clock advances.
    pub fn virtual_time(ring_capacity: usize) -> Self {
        Self::enabled_with(TimeDomain::Virtual, ring_capacity)
    }

    fn enabled_with(domain: TimeDomain, ring_capacity: usize) -> Self {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                // Relaxed: unique-id allocation needs atomicity only.
                id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
                domain,
                start: Instant::now(),
                virtual_now: AtomicU64::new(0f64.to_bits()),
                ring_capacity,
                shards: Mutex::new(Vec::new()),
                registry: Registry::new(),
            })),
        }
    }

    /// Whether events are being captured. Instrumentation can guard any
    /// payload construction it wants to avoid on the disabled path.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This sink's time domain (`None` when disabled).
    pub fn domain(&self) -> Option<TimeDomain> {
        self.inner.as_ref().map(|i| i.domain)
    }

    /// Seconds on this sink's clock (0.0 when disabled).
    pub fn now(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| i.now())
    }

    /// Publish the simulation's current virtual time.
    pub fn set_virtual_now(&self, t: f64) {
        if let Some(inner) = &self.inner {
            // Relaxed: see `SinkInner::now` — racy clock reads are fine.
            inner.virtual_now.store(t.to_bits(), Ordering::Relaxed);
        }
    }

    /// Record `kind` for `worker`, stamped with the current time.
    #[inline]
    pub fn emit(&self, worker: u32, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        let t = inner.now();
        inner
            .shard_for_this_thread()
            .ring
            .lock()
            .push(Event { t, worker, kind });
    }

    /// Record `kind` for `worker` at an explicit timestamp (used by the
    /// simulation when scheduling events at times other than "now").
    pub fn emit_at(&self, t: f64, worker: u32, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        inner
            .shard_for_this_thread()
            .ring
            .lock()
            .push(Event { t, worker, kind });
    }

    /// Handle to a named monotonic counter (no-op when disabled).
    pub fn counter(&self, name: &str) -> CounterHandle {
        self.inner
            .as_ref()
            .map_or_else(CounterHandle::disabled, |i| i.registry.counter(name))
    }

    /// Handle to a named gauge (no-op when disabled).
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        self.inner
            .as_ref()
            .map_or_else(GaugeHandle::disabled, |i| i.registry.gauge(name))
    }

    /// Point-in-time counter/gauge values (empty when disabled).
    pub fn snapshot_counters(&self) -> Vec<(String, f64)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.registry.snapshot())
    }

    /// Point-in-time counters and gauges, kept apart with native types
    /// (empty when disabled). The OpenMetrics exporter in `hetero-metrics`
    /// renders counters as `counter` families and gauges as `gauge`
    /// families from this.
    pub fn snapshot_typed(&self) -> crate::counters::TypedSnapshot {
        self.inner
            .as_ref()
            .map_or_else(Default::default, |i| i.registry.snapshot_typed())
    }

    /// Take every buffered event out of every thread's ring, together with
    /// per-ring dropped counts and a counter snapshot. Rings stay
    /// registered, so tracing can continue after a drain.
    pub fn drain(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace {
                domain: TimeDomain::Wall,
                shards: Vec::new(),
                counters: Vec::new(),
            };
        };
        let shards = inner.shards.lock();
        let dumps = shards
            .iter()
            .map(|shard| {
                let mut ring = shard.ring.lock();
                ShardDump {
                    label: shard.label.clone(),
                    events: ring.drain(),
                    dropped: ring.dropped(),
                }
            })
            .collect();
        Trace {
            domain: inner.domain,
            shards: dumps,
            counters: inner.registry.snapshot(),
        }
    }

    /// Copy every buffered event out of every thread's ring *without*
    /// removing anything — the flight recorder uses this to embed the
    /// retained window in a postmortem bundle while the run's owner still
    /// gets the full trace from its own [`TraceSink::drain`] later.
    pub fn capture(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace {
                domain: TimeDomain::Wall,
                shards: Vec::new(),
                counters: Vec::new(),
            };
        };
        let shards = inner.shards.lock();
        let dumps = shards
            .iter()
            .map(|shard| {
                let ring = shard.ring.lock();
                ShardDump {
                    label: shard.label.clone(),
                    events: ring.peek(),
                    dropped: ring.dropped(),
                }
            })
            .collect();
        Trace {
            domain: inner.domain,
            shards: dumps,
            counters: inner.registry.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.enabled());
        sink.emit(0, EventKind::QueuePushed { depth: 1 });
        sink.counter("x").add(5);
        assert!(sink.drain().is_empty());
        assert!(sink.snapshot_counters().is_empty());
    }

    #[test]
    fn wall_sink_captures_and_drains() {
        let sink = TraceSink::wall(128);
        sink.emit(0, EventKind::BatchDispatched { batch: 32 });
        sink.emit(
            0,
            EventKind::BatchCompleted {
                batch: 32,
                updates: 4,
            },
        );
        let trace = sink.drain();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.domain, TimeDomain::Wall);
        let evs = trace.events_sorted();
        assert!(evs[0].t <= evs[1].t);
        // Drain emptied the rings but tracing continues.
        sink.emit(1, EventKind::EvalPoint { loss: 0.5 });
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn virtual_sink_uses_published_time() {
        let sink = TraceSink::virtual_time(16);
        sink.set_virtual_now(12.5);
        sink.emit(2, EventKind::EvalPoint { loss: 1.0 });
        sink.emit_at(99.0, 2, EventKind::EvalPoint { loss: 0.9 });
        let trace = sink.drain();
        let evs = trace.events_sorted();
        assert_eq!(evs[0].t, 12.5);
        assert_eq!(evs[1].t, 99.0);
        assert_eq!(trace.domain, TimeDomain::Virtual);
    }

    #[test]
    fn each_thread_gets_its_own_shard() {
        let sink = TraceSink::wall(1024);
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let sink = sink.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("emitter-{w}"))
                    .spawn(move || {
                        for i in 0..100 {
                            sink.emit(w, EventKind::QueuePushed { depth: i });
                        }
                    })
                    .unwrap(),
            );
        }
        for h in handles {
            h.join().unwrap();
        }
        let trace = sink.drain();
        assert_eq!(trace.shards.len(), 4);
        assert_eq!(trace.len(), 400);
        for shard in &trace.shards {
            assert!(shard.label.starts_with("emitter-"));
            // Per-shard (= per-thread) emit order is intact.
            let depths: Vec<usize> = shard
                .events
                .iter()
                .map(|e| match e.kind {
                    EventKind::QueuePushed { depth } => depth,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(depths, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn counters_flow_into_drained_trace() {
        let sink = TraceSink::wall(16);
        sink.counter("mq.pushes").add(7);
        sink.gauge("mq.depth_hwm").fetch_max(3.0);
        let trace = sink.drain();
        assert_eq!(
            trace.counters,
            vec![
                ("mq.depth_hwm".to_string(), 3.0),
                ("mq.pushes".to_string(), 7.0),
            ]
        );
    }
}
