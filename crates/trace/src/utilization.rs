//! Derive per-worker utilization from a drained trace.
//!
//! This reconstructs the paper's Fig. 7 signal — how busy each device was
//! over the run — purely from `BatchDispatched`/`BatchCompleted` pairs, so
//! a Chrome trace and a utilization plot come from the same event stream
//! and cannot disagree.

use std::collections::HashMap;

use crate::event::{EventKind, COORDINATOR};
use crate::sink::Trace;

/// Busy-time summary for one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtilization {
    /// Worker id.
    pub worker: u32,
    /// Seconds spent between dispatch and completion.
    pub busy_secs: f64,
    /// `busy_secs` over the trace's observed time span (0.0 if the span
    /// is empty).
    pub busy_fraction: f64,
    /// Completed batches.
    pub batches: usize,
    /// Examples processed (sum of completed batch sizes).
    pub examples: usize,
}

/// Per-worker utilization over the trace's time span, sorted by worker id.
/// Coordinator-only events contribute to the span but not to any worker.
pub fn utilization(trace: &Trace) -> Vec<WorkerUtilization> {
    let events = trace.events_sorted();
    let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut pending: HashMap<u32, f64> = HashMap::new();
    let mut acc: HashMap<u32, WorkerUtilization> = HashMap::new();
    for event in &events {
        t_min = t_min.min(event.t);
        t_max = t_max.max(event.t);
        if event.worker == COORDINATOR {
            continue;
        }
        match &event.kind {
            EventKind::BatchDispatched { .. } => {
                pending.insert(event.worker, event.t);
            }
            EventKind::BatchCompleted { batch, .. } => {
                if let Some(t0) = pending.remove(&event.worker) {
                    let u = acc.entry(event.worker).or_insert(WorkerUtilization {
                        worker: event.worker,
                        busy_secs: 0.0,
                        busy_fraction: 0.0,
                        batches: 0,
                        examples: 0,
                    });
                    u.busy_secs += (event.t - t0).max(0.0);
                    u.batches += 1;
                    u.examples += batch;
                }
            }
            _ => {}
        }
    }
    let span = (t_max - t_min).max(0.0);
    let mut out: Vec<WorkerUtilization> = acc.into_values().collect();
    for u in &mut out {
        u.busy_fraction = if span > 0.0 { u.busy_secs / span } else { 0.0 };
    }
    out.sort_by_key(|u| u.worker);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ResizeReason;
    use crate::sink::TraceSink;

    #[test]
    fn busy_fractions_come_from_paired_batches() {
        let sink = TraceSink::virtual_time(64);
        // Worker 0: busy [0, 1] and [2, 3] of a [0, 4] span → 0.5.
        for (t0, t1) in [(0.0, 1.0), (2.0, 3.0)] {
            sink.emit_at(t0, 0, EventKind::BatchDispatched { batch: 10 });
            sink.emit_at(
                t1,
                0,
                EventKind::BatchCompleted {
                    batch: 10,
                    updates: 1,
                },
            );
        }
        // Worker 1: busy [0, 4] → 1.0; also stretches the span.
        sink.emit_at(0.0, 1, EventKind::BatchDispatched { batch: 100 });
        sink.emit_at(
            4.0,
            1,
            EventKind::BatchCompleted {
                batch: 100,
                updates: 1,
            },
        );
        // Noise that must not affect utilization.
        sink.emit_at(
            1.5,
            0,
            EventKind::BatchResized {
                old: 10,
                new: 12,
                reason: ResizeReason::Ahead,
            },
        );
        let u = utilization(&sink.drain());
        assert_eq!(u.len(), 2);
        assert!((u[0].busy_fraction - 0.5).abs() < 1e-12);
        assert_eq!(u[0].examples, 20);
        assert!((u[1].busy_fraction - 1.0).abs() < 1e-12);
        assert_eq!(u[1].batches, 1);
    }

    #[test]
    fn empty_trace_yields_no_workers() {
        let sink = TraceSink::wall(8);
        assert!(utilization(&sink.drain()).is_empty());
    }
}
