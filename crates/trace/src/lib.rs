//! `hetero-trace`: structured event tracing, live counters, and Chrome
//! trace export for the heterogeneous CPU+GPU training stack.
//!
//! The coordinator, workers, message queues, and the software GPU all
//! instrument against one object — the [`TraceSink`] — which is either
//! disabled (every call reduces to an `Option` branch, verified by the
//! `trace` benchmark) or enabled, buffering typed [`Event`]s into
//! per-thread bounded drop-oldest rings.
//!
//! Both engines share the same API but different clocks: the threaded
//! engine stamps wall seconds, the discrete-event simulator publishes its
//! virtual clock via [`TraceSink::set_virtual_now`]. Exporters label the
//! domain so a Perfetto view of a simulated run is never mistaken for a
//! wall-clock one.
//!
//! ```
//! use hetero_trace::{EventKind, TraceSink};
//!
//! let sink = TraceSink::wall(1024);
//! sink.emit(0, EventKind::BatchDispatched { batch: 64 });
//! sink.emit(0, EventKind::BatchCompleted { batch: 64, updates: 8 });
//! sink.counter("mq.pushes").add(1);
//! let trace = sink.drain();
//! assert_eq!(trace.len(), 2);
//! let chrome_json = hetero_trace::export::to_chrome_json(&trace);
//! assert!(chrome_json.contains("traceEvents"));
//! ```

#![warn(missing_docs)]

mod counters;
mod event;
mod ring;
mod sink;

pub mod export;
pub mod utilization;

pub use counters::{CounterHandle, GaugeHandle, Registry, TypedSnapshot};
pub use event::{Event, EventKind, ResizeReason, COORDINATOR};
pub use ring::EventRing;
pub use sink::{ShardDump, TimeDomain, Trace, TraceSink, DEFAULT_RING_CAPACITY};
