//! The typed event model shared by both engines.
//!
//! Every event is stamped with an engine-relative timestamp in **seconds**
//! and the id of the worker it concerns. The timestamp's meaning depends on
//! the sink's [`TimeDomain`](crate::TimeDomain): wall seconds since the
//! sink was created (threaded engine) or virtual simulation seconds
//! (discrete-event engine). Events about the coordinator itself use
//! [`COORDINATOR`] as the worker id.

use serde::{Deserialize, Serialize};

/// Worker id used for events the coordinator emits about itself.
pub const COORDINATOR: u32 = u32::MAX;

/// Why the adaptive controller changed a worker's batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResizeReason {
    /// Worker was ahead of the slowest peer; batch grew (Algorithm 2's
    /// `×α` branch).
    Ahead,
    /// Worker was behind; batch shrank (the `÷α` branch).
    Behind,
    /// Size change came from clamping to the configured `[min, max]`.
    Clamped,
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Coordinator handed a batch to a worker.
    BatchDispatched {
        /// Examples in the dispatched batch.
        batch: usize,
    },
    /// Worker finished a batch and reported back.
    BatchCompleted {
        /// Examples in the completed batch.
        batch: usize,
        /// Model updates the worker applied for this batch.
        updates: usize,
    },
    /// Adaptive controller resized a worker's batch.
    BatchResized {
        /// Batch size before the change.
        old: usize,
        /// Batch size after the change.
        new: usize,
        /// Which controller branch caused it.
        reason: ResizeReason,
    },
    /// Message pushed onto a queue; `depth` is the length after the push.
    QueuePushed {
        /// Queue depth after the push.
        depth: usize,
    },
    /// Message popped from a queue; `depth` is the length after the pop.
    QueuePopped {
        /// Queue depth after the pop.
        depth: usize,
    },
    /// Host-to-device transfer completed.
    H2d {
        /// Payload size.
        bytes: usize,
        /// Modeled transfer time in seconds.
        secs: f64,
    },
    /// Device-to-host transfer completed.
    D2h {
        /// Payload size.
        bytes: usize,
        /// Modeled transfer time in seconds.
        secs: f64,
    },
    /// A device kernel was launched.
    KernelLaunched {
        /// Kernel name.
        name: String,
    },
    /// GPU replica merged into the shared model.
    ModelMerge {
        /// Staleness discount applied to the merge (1.0 = fresh).
        scale: f64,
    },
    /// Evaluation point on the loss curve.
    EvalPoint {
        /// Training loss at this point.
        loss: f64,
    },
    /// A worker reported a fault (device OOM it could not recover from, a
    /// caught panic, or a dead channel) to the coordinator.
    WorkerFault {
        /// Human-readable fault description.
        reason: String,
    },
    /// The coordinator quarantined a worker: its slot is inactive for the
    /// rest of the run and its in-flight work was re-queued.
    WorkerRetired {
        /// Why the worker was retired.
        reason: String,
    },
    /// An in-flight batch range was returned to the dispatch queue (its
    /// worker died, or an OOM retry shrank the step and left a tail).
    BatchRequeued {
        /// Examples in the re-queued range.
        batch: usize,
    },
    /// The training-health watchdog reacted to a condition (non-finite
    /// gradient, loss divergence, or stall).
    HealthEvent {
        /// Action taken: `"warn"`, `"clamp"`, or `"abort"`.
        action: String,
        /// What tripped and where.
        detail: String,
    },
}

impl EventKind {
    /// Short category label used by exporters.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::BatchDispatched { .. }
            | EventKind::BatchCompleted { .. }
            | EventKind::BatchResized { .. }
            | EventKind::BatchRequeued { .. } => "batch",
            EventKind::WorkerFault { .. } | EventKind::WorkerRetired { .. } => "fault",
            EventKind::HealthEvent { .. } => "health",
            EventKind::QueuePushed { .. } | EventKind::QueuePopped { .. } => "queue",
            EventKind::H2d { .. } | EventKind::D2h { .. } => "transfer",
            EventKind::KernelLaunched { .. } => "kernel",
            EventKind::ModelMerge { .. } => "merge",
            EventKind::EvalPoint { .. } => "eval",
        }
    }
}

/// A stamped event: what happened, when, and to which worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Seconds in the sink's time domain.
    pub t: f64,
    /// Worker/device id, or [`COORDINATOR`].
    pub worker: u32,
    /// What happened.
    pub kind: EventKind,
}
