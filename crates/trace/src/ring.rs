//! Bounded drop-oldest event ring.
//!
//! Each tracing thread gets its own ring (see `sink.rs`), so the mutex
//! around a ring is effectively uncontended: the owning thread pushes, and
//! the only cross-thread access is a drain at the end of a run (or an
//! explicit snapshot). When the ring is full the *oldest* event is
//! discarded and the `dropped` count incremented, so a long run keeps its
//! most recent window of events and reports exactly how many fell off.

use std::collections::VecDeque;

use crate::event::Event;

/// Fixed-capacity drop-oldest event buffer.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (capacity 0 drops all).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Take all buffered events, preserving push order. The dropped count
    /// is *not* reset: it keeps accumulating over the ring's lifetime.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }

    /// Copy all buffered events, preserving push order, without removing
    /// them (a postmortem snapshot must not steal the caller's trace).
    pub fn peek(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events evicted (or rejected by a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn ev(i: usize) -> Event {
        Event {
            t: i as f64,
            worker: 0,
            kind: EventKind::QueuePushed { depth: i },
        }
    }

    #[test]
    fn drop_oldest_keeps_newest_window() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 2);
        let drained = r.drain();
        let ts: Vec<f64> = drained.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2, "drain must not reset the dropped count");
    }

    #[test]
    fn zero_capacity_counts_everything_dropped() {
        let mut r = EventRing::new(0);
        for i in 0..7 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 7);
    }
}
