//! Atomic counter/gauge registry, snapshottable at any time.
//!
//! Counters are monotonically increasing `u64`s (events dropped, stall
//! nanoseconds); gauges are `f64`s with set/high-water-mark semantics
//! (queue depth HWM, allocator bytes in use, examples/sec, β estimate).
//! Hot paths should resolve a [`CounterHandle`]/[`GaugeHandle`] once and
//! update through it, skipping the name lookup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Name → atomic cell registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<Vec<(String, Arc<AtomicU64>)>>,
    gauges: RwLock<Vec<(String, Arc<AtomicU64>)>>,
}

impl Registry {
    /// A new, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(table: &RwLock<Vec<(String, Arc<AtomicU64>)>>, name: &str) -> Arc<AtomicU64> {
        if let Some((_, cell)) = table.read().iter().find(|(n, _)| n == name) {
            return Arc::clone(cell);
        }
        let mut w = table.write();
        if let Some((_, cell)) = w.iter().find(|(n, _)| n == name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(AtomicU64::new(0));
        w.push((name.to_string(), Arc::clone(&cell)));
        cell
    }

    /// Handle to the named monotonic counter (created on first use).
    pub fn counter(&self, name: &str) -> CounterHandle {
        CounterHandle {
            cell: Some(Self::get_or_insert(&self.counters, name)),
        }
    }

    /// Handle to the named gauge (created on first use, initial value 0.0).
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        GaugeHandle {
            cell: Some(Self::get_or_insert(&self.gauges, name)),
        }
    }

    /// Point-in-time values of every counter and gauge, sorted by name.
    /// Counter values are reported as `f64` alongside gauges so the
    /// snapshot has one uniform shape.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        // Relaxed loads throughout: metrics are monitoring data — a racy
        // snapshot is acceptable and no other memory hinges on the values.
        let mut out: Vec<(String, f64)> = Vec::new();
        for (name, cell) in self.counters.read().iter() {
            out.push((name.clone(), cell.load(Ordering::Relaxed) as f64));
        }
        for (name, cell) in self.gauges.read().iter() {
            out.push((name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Like [`Registry::snapshot`] but keeping counters and gauges apart
    /// with their native types, so exporters that distinguish monotone
    /// counters from gauges (e.g. OpenMetrics) don't have to guess from
    /// names.
    pub fn snapshot_typed(&self) -> TypedSnapshot {
        // Relaxed loads: same racy-monitoring-snapshot argument as
        // `snapshot` above.
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .read()
            .iter()
            // Relaxed: same racy-monitoring-snapshot argument as above.
            .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        TypedSnapshot { counters, gauges }
    }
}

/// A [`Registry::snapshot_typed`] result: counters and gauges separated,
/// each sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypedSnapshot {
    /// Monotonic counters with their native `u64` values.
    pub counters: Vec<(String, u64)>,
    /// Gauges (`f64`, set/high-water-mark semantics).
    pub gauges: Vec<(String, f64)>,
}

/// Handle to a monotonic counter; a disconnected handle (from a disabled
/// sink) makes every operation a no-op.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle {
    cell: Option<Arc<AtomicU64>>,
}

impl CounterHandle {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.cell {
            // Relaxed: monitoring counter; ordering carries no meaning here.
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        // Relaxed: racy monitoring read, by design.
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to an `f64` gauge; a disconnected handle makes every operation a
/// no-op.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle {
    cell: Option<Arc<AtomicU64>>,
}

impl GaugeHandle {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Overwrite the gauge.
    pub fn set(&self, value: f64) {
        if let Some(c) = &self.cell {
            // Relaxed: monitoring gauge; last-writer-wins is fine.
            c.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `value` if it is higher (high-water mark).
    pub fn fetch_max(&self, value: f64) {
        let Some(c) = &self.cell else { return };
        // Relaxed CAS loop: atomicity keeps the high-water mark exact;
        // ordering is irrelevant for a monitoring value.
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= value {
                return;
            }
            match c.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Add `delta` (atomic read-modify-write loop).
    pub fn add(&self, delta: f64) {
        let Some(c) = &self.cell else { return };
        // Relaxed CAS loop: same argument as `fetch_max`.
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value (0.0 for a disabled handle).
    pub fn get(&self) -> f64 {
        // Relaxed: racy monitoring read, by design.
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        let c = r.counter("events.dropped");
        c.add(3);
        r.counter("events.dropped").add(2);
        assert_eq!(c.get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap, vec![("events.dropped".to_string(), 5.0)]);
    }

    #[test]
    fn gauge_hwm_and_add() {
        let r = Registry::new();
        let g = r.gauge("mq.depth_hwm");
        g.fetch_max(4.0);
        g.fetch_max(2.0);
        assert_eq!(g.get(), 4.0);
        let a = r.gauge("alloc.bytes");
        a.add(10.0);
        a.add(-4.0);
        assert_eq!(a.get(), 6.0);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = CounterHandle::disabled();
        c.add(9);
        assert_eq!(c.get(), 0);
        let g = GaugeHandle::disabled();
        g.set(1.0);
        g.fetch_max(2.0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn gauge_hwm_is_correct_under_contention() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let g = r.gauge("hwm");
                for i in 0..1000u64 {
                    g.fetch_max((t * 1000 + i) as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.gauge("hwm").get(), 7999.0);
    }
}
