//! Ring-buffer contract tests: drain preserves per-thread emit order and
//! the `dropped` count equals exactly the number of overwritten events.

use hetero_trace::{Event, EventKind, EventRing, TraceSink};
use proptest::prelude::*;

fn ev(seq: usize) -> Event {
    Event {
        t: seq as f64,
        worker: 0,
        kind: EventKind::QueuePushed { depth: seq },
    }
}

proptest! {
    /// After n pushes into a capacity-c ring, the survivors are exactly the
    /// newest min(n, c) events in push order, and everything older was
    /// counted as dropped.
    #[test]
    fn drain_is_newest_window_in_order(capacity in 0usize..48, n in 0usize..160) {
        let mut ring = EventRing::new(capacity);
        for i in 0..n {
            ring.push(ev(i));
        }
        let kept = ring.drain();
        let expect_len = n.min(capacity);
        prop_assert_eq!(kept.len(), expect_len);
        for (k, e) in kept.iter().enumerate() {
            prop_assert_eq!(e.t as usize, n - expect_len + k);
        }
        prop_assert_eq!(ring.dropped(), (n - expect_len) as u64);
        prop_assert!(ring.is_empty());
    }

    /// `dropped` accumulates over the ring's lifetime; draining never
    /// resets it.
    #[test]
    fn dropped_accumulates_across_drains(
        capacity in 1usize..16,
        rounds in 1usize..5,
        n in 0usize..40,
    ) {
        let mut ring = EventRing::new(capacity);
        let mut expect_dropped = 0u64;
        for _ in 0..rounds {
            for i in 0..n {
                ring.push(ev(i));
            }
            expect_dropped += n.saturating_sub(capacity) as u64;
            let _ = ring.drain();
            prop_assert_eq!(ring.dropped(), expect_dropped);
        }
    }
}

/// Through the full sink: concurrent emitters each get a private shard, the
/// shard keeps that thread's emit order, and each shard's dropped count is
/// exactly the events its bounded ring evicted.
#[test]
fn concurrent_emitters_keep_per_shard_order_and_exact_drop_counts() {
    const CAPACITY: usize = 64;
    const PER_THREAD: usize = 211; // > CAPACITY so every shard drops some
    let sink = TraceSink::wall(CAPACITY);
    let mut handles = Vec::new();
    for w in 0..4u32 {
        let sink = sink.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("order-{w}"))
                .spawn(move || {
                    for i in 0..PER_THREAD {
                        sink.emit(w, EventKind::QueuePushed { depth: i });
                    }
                })
                .unwrap(),
        );
    }
    for h in handles {
        h.join().unwrap();
    }
    let trace = sink.drain();
    assert_eq!(trace.shards.len(), 4);
    for shard in &trace.shards {
        assert_eq!(shard.events.len(), CAPACITY);
        assert_eq!(shard.dropped, (PER_THREAD - CAPACITY) as u64);
        let seqs: Vec<usize> = shard
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::QueuePushed { depth } => depth,
                ref other => panic!("unexpected {other:?}"),
            })
            .collect();
        // The surviving window is the newest PER_THREAD-CAPACITY.. range,
        // still in emit order.
        let expect: Vec<usize> = (PER_THREAD - CAPACITY..PER_THREAD).collect();
        assert_eq!(seqs, expect);
    }
    assert_eq!(trace.total_dropped(), 4 * (PER_THREAD - CAPACITY) as u64);
}
