//! Golden-file and schema checks for the Chrome `trace_event` exporter.
//!
//! The golden file pins the exact bytes the exporter produces for a fixed
//! trace, so accidental format drift (field renames, unit changes, lost
//! metadata) fails loudly. Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p hetero-trace --test chrome_golden`.

use hetero_trace::{export, EventKind, ResizeReason, TraceSink, COORDINATOR};
use serde::Value;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/chrome_trace.json"
);

/// A fixed, fully deterministic trace exercising every event kind.
fn fixture_trace() -> hetero_trace::Trace {
    let sink = TraceSink::virtual_time(256);
    sink.emit_at(0.0, 0, EventKind::BatchDispatched { batch: 56 });
    sink.emit_at(0.0, 1, EventKind::BatchDispatched { batch: 8192 });
    sink.emit_at(0.001, 0, EventKind::QueuePushed { depth: 1 });
    sink.emit_at(0.002, 0, EventKind::QueuePopped { depth: 0 });
    sink.emit_at(
        0.010,
        1,
        EventKind::H2d {
            bytes: 4096,
            secs: 0.004,
        },
    );
    sink.emit_at(
        0.012,
        1,
        EventKind::KernelLaunched {
            name: "forward".to_string(),
        },
    );
    sink.emit_at(
        0.050,
        0,
        EventKind::BatchCompleted {
            batch: 56,
            updates: 14,
        },
    );
    sink.emit_at(
        0.060,
        0,
        EventKind::BatchResized {
            old: 56,
            new: 112,
            reason: ResizeReason::Ahead,
        },
    );
    sink.emit_at(
        0.080,
        1,
        EventKind::D2h {
            bytes: 4096,
            secs: 0.004,
        },
    );
    sink.emit_at(0.081, 1, EventKind::ModelMerge { scale: 0.5 });
    sink.emit_at(
        0.090,
        1,
        EventKind::BatchCompleted {
            batch: 8192,
            updates: 1,
        },
    );
    sink.emit_at(0.100, COORDINATOR, EventKind::EvalPoint { loss: 0.693 });
    sink.counter("mq.ready.pushes").add(2);
    sink.gauge("gpu.w1.stall_secs").set(0.25);
    sink.drain()
}

/// Minimal schema check: the structural invariants Perfetto relies on.
fn assert_chrome_schema(json: &str) {
    let root: Value = serde_json::from_str(json).expect("exporter output is valid JSON");
    let events = match root.get("traceEvents") {
        Some(Value::Array(a)) => a,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "no trace events");
    assert!(
        matches!(root.get("displayTimeUnit"), Some(Value::Str(_))),
        "displayTimeUnit missing"
    );
    let domain = root.get("otherData").and_then(|o| o.get("timeDomain"));
    assert_eq!(
        domain,
        Some(&Value::Str("virtual".to_string())),
        "time domain must be labelled"
    );
    let num = |v: Option<&Value>| -> f64 {
        match v {
            Some(Value::F64(x)) => *x,
            Some(Value::U64(n)) => *n as f64,
            Some(Value::I64(n)) => *n as f64,
            other => panic!("expected number, got {other:?}"),
        }
    };
    for e in events {
        let ph = match e.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("ph missing: {other:?}"),
        };
        assert!(
            ["M", "X", "i", "C"].contains(&ph.as_str()),
            "unexpected phase {ph}"
        );
        assert!(matches!(e.get("name"), Some(Value::Str(_))), "name missing");
        assert!(matches!(e.get("cat"), Some(Value::Str(_))), "cat missing");
        assert!(num(e.get("ts")) >= 0.0, "ts must be non-negative");
        let _ = num(e.get("pid"));
        let _ = num(e.get("tid"));
        if ph == "X" {
            assert!(num(e.get("dur")) >= 0.0, "complete events need dur");
        }
    }
}

#[test]
fn chrome_export_matches_schema() {
    assert_chrome_schema(&export::to_chrome_json(&fixture_trace()));
}

#[test]
fn chrome_export_matches_golden_file() {
    let json = export::to_chrome_json(&fixture_trace());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, golden,
        "Chrome exporter output drifted from the golden file; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_export_has_one_track_per_worker() {
    let json = export::to_chrome_json(&fixture_trace());
    let root: Value = serde_json::from_str(&json).unwrap();
    let events = match root.get("traceEvents") {
        Some(Value::Array(a)) => a,
        _ => unreachable!(),
    };
    let mut named_tracks: Vec<String> = events
        .iter()
        .filter(|e| e.get("name") == Some(&Value::Str("thread_name".to_string())))
        .filter_map(|e| match e.get("args").and_then(|a| a.get("name")) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .collect();
    named_tracks.sort();
    assert_eq!(named_tracks, vec!["coordinator", "worker-0", "worker-1"]);
}
