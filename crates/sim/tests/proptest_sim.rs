//! Property tests on the simulation substrate.

use hetero_sim::{CpuModel, DeviceModel, EventQueue, GpuModel, UtilizationTimeline};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Events always pop in non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last_t = f64::NEG_INFINITY;
        let mut popped = 0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_t, "time went backwards");
            if t > last_t {
                seen_at_time.clear();
            }
            // FIFO among equal times: indices at the same instant ascend.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev, "tie broken out of order");
            }
            seen_at_time.push(idx);
            last_t = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// GPU batch time is monotone increasing in batch size while
    /// throughput (examples/s) is also monotone increasing — the curve
    /// that motivates large GPU batches.
    #[test]
    fn gpu_time_and_throughput_monotone(b1 in 1usize..10_000, b2 in 1usize..10_000) {
        prop_assume!(b1 < b2);
        let gpu = GpuModel::v100();
        let fpe = 1_000_000;
        let t1 = gpu.batch_time(fpe, b1);
        let t2 = gpu.batch_time(fpe, b2);
        prop_assert!(t2 > t1);
        prop_assert!(b2 as f64 / t2 > b1 as f64 / t1);
    }

    /// CPU batch time is non-decreasing in batch size.
    #[test]
    fn cpu_time_monotone(b1 in 1usize..100_000, b2 in 1usize..100_000) {
        prop_assume!(b1 < b2);
        let cpu = CpuModel::xeon_pair();
        prop_assert!(cpu.batch_time(1_000_000, b2) >= cpu.batch_time(1_000_000, b1) - 1e-12);
    }

    /// Occupancy and utilization stay inside [0, 1] for any batch.
    #[test]
    fn utilizations_bounded(b in 0usize..1_000_000) {
        let gpu = GpuModel::v100();
        let cpu = CpuModel::xeon_pair();
        prop_assert!((0.0..=1.0).contains(&gpu.busy_utilization(b)));
        prop_assert!((0.0..=1.0).contains(&cpu.busy_utilization(b)));
    }

    /// Timeline average over any window is bounded by the max level.
    #[test]
    fn timeline_average_bounded(
        segs in prop::collection::vec((0.0f64..10.0, 0.0f64..5.0, 0.0f64..1.0), 1..30),
    ) {
        let mut tl = UtilizationTimeline::new();
        let mut t = 0.0;
        let mut max_level: f64 = 0.0;
        for (gap, dur, level) in segs {
            t += gap;
            tl.record(t, t + dur, level);
            t += dur;
            max_level = max_level.max(level);
        }
        let horizon = tl.horizon().max(1.0);
        let avg = tl.average(0.0, horizon);
        prop_assert!(avg <= max_level + 1e-9, "avg {avg} > max level {max_level}");
        prop_assert!(avg >= 0.0);
        // Sampling then taking the *time-weighted* mean equals the direct
        // average (floating-point accumulation can make the final window a
        // sliver, so the windows must be weighted by their actual width).
        let samples = tl.sample(horizon, horizon / 16.0);
        let mut weighted = 0.0;
        for (i, &(t, u)) in samples.iter().enumerate() {
            let end = samples.get(i + 1).map(|&(t2, _)| t2).unwrap_or(horizon);
            weighted += u * (end - t);
        }
        let mean = weighted / horizon;
        prop_assert!((mean - avg).abs() < 1e-6, "weighted sample mean {mean} vs avg {avg}");
    }

    /// Transfer time is additive-ish: t(a) + t(b) >= t(a+b) >= max(t(a), t(b))
    /// (latency is paid once for the combined transfer).
    #[test]
    fn transfer_time_subadditive(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let gpu = GpuModel::v100();
        let ta = gpu.transfer_time(a);
        let tb = gpu.transfer_time(b);
        let tab = gpu.transfer_time(a + b);
        prop_assert!(tab <= ta + tb + 1e-12);
        prop_assert!(tab >= ta.max(tb) - 1e-12);
    }
}
