//! # hetero-sim
//!
//! Discrete-event simulation substrate for the hetero-sgd workspace.
//!
//! The paper's headline numbers depend on the *relative* speed of a V100
//! GPU and two 18-core Xeons (Hogwild on CPU takes 236–317× longer per
//! epoch than mini-batch on GPU, §VII-B). Without that hardware, the
//! honest reproduction path is a virtual clock: gradient computations run
//! for real, but *when* each worker's update lands is decided by calibrated
//! device performance models advanced by a deterministic event queue.
//!
//! Components:
//! - [`events::EventQueue`] — a deterministic priority queue over virtual
//!   time (ties broken by insertion sequence, so runs are reproducible).
//! - [`device`] — throughput models for the paper's hardware (Table I):
//!   a V100-like accelerator with a batch-size-dependent occupancy curve
//!   plus kernel-launch and PCIe-transfer overheads, and a Xeon-like CPU
//!   whose per-thread efficiency grows with sub-batch size.
//! - [`timeline::UtilizationTimeline`] — busy-interval accounting used to
//!   regenerate the paper's Figure 7 utilization plots.
//!
//! Calibration is checked by tests: the simulated Hogwild-CPU /
//! mini-batch-GPU epoch-time ratio for the covtype network falls inside the
//! paper's reported 236–317× band.

#![warn(missing_docs)]

pub mod device;
pub mod events;
pub mod timeline;

pub use device::{CpuModel, DeviceModel, GpuModel};
pub use events::{EventQueue, SimTime};
pub use timeline::{RecordError, UtilizationTimeline};
