//! Busy-interval accounting and utilization timelines (Figure 7 substrate).
//!
//! Each device worker records `[start, end) × level` busy segments; the
//! timeline can then be sampled on a fixed grid to produce the utilization
//! curves the paper plots over three epochs.

use serde::{Deserialize, Serialize};

use crate::events::SimTime;

/// One busy interval at a given utilization level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Interval start (virtual seconds).
    pub start: SimTime,
    /// Interval end (virtual seconds).
    pub end: SimTime,
    /// Device utilization during the interval, in `[0, 1]`.
    pub level: f64,
}

/// Append-only record of a device's busy intervals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationTimeline {
    segments: Vec<Segment>,
}

impl UtilizationTimeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a busy interval.
    ///
    /// # Panics
    /// Panics on inverted intervals, levels outside `[0, 1]`, or intervals
    /// that start before the previous one ends (a device is sequential).
    pub fn record(&mut self, start: SimTime, end: SimTime, level: f64) {
        assert!(end >= start, "inverted interval");
        assert!((0.0..=1.0).contains(&level), "level {level} outside [0,1]");
        if let Some(last) = self.segments.last() {
            assert!(
                start >= last.end - 1e-12,
                "overlapping busy intervals ({start} < {})",
                last.end
            );
        }
        if end > start {
            self.segments.push(Segment { start, end, level });
        }
    }

    /// All recorded segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Time-weighted mean utilization over `[from, to)` (idle counts as 0).
    pub fn average(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "empty window");
        let mut busy = 0.0;
        for s in &self.segments {
            let lo = s.start.max(from);
            let hi = s.end.min(to);
            if hi > lo {
                busy += (hi - lo) * s.level;
            }
        }
        busy / (to - from)
    }

    /// Sample mean utilization over consecutive windows of `dt` covering
    /// `[0, horizon)` — the Figure 7 plotting series.
    pub fn sample(&self, horizon: SimTime, dt: SimTime) -> Vec<(SimTime, f64)> {
        assert!(dt > 0.0, "non-positive sample step");
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < horizon {
            let hi = (t + dt).min(horizon);
            out.push((t, self.average(t, hi)));
            t = hi;
        }
        out
    }

    /// Total busy time (level-weighted) across the whole record.
    pub fn busy_time(&self) -> SimTime {
        self.segments
            .iter()
            .map(|s| (s.end - s.start) * s.level)
            .sum()
    }

    /// End time of the last segment (0 when empty).
    pub fn horizon(&self) -> SimTime {
        self.segments.last().map_or(0.0, |s| s.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_average() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 1.0, 1.0);
        t.record(1.0, 2.0, 0.5);
        // [0,2): (1*1 + 1*0.5)/2 = 0.75
        assert!((t.average(0.0, 2.0) - 0.75).abs() < 1e-12);
        // Window with idle tail [0,4): 1.5/4
        assert!((t.average(0.0, 4.0) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_windows() {
        let mut t = UtilizationTimeline::new();
        t.record(1.0, 3.0, 1.0);
        assert!((t.average(0.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((t.average(2.0, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(t.average(4.0, 5.0), 0.0);
    }

    #[test]
    fn sample_grid() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 1.0, 0.8);
        let s = t.sample(2.0, 0.5);
        assert_eq!(s.len(), 4);
        assert!((s[0].1 - 0.8).abs() < 1e-12);
        assert!((s[1].1 - 0.8).abs() < 1e-12);
        assert_eq!(s[2].1, 0.0);
    }

    #[test]
    fn zero_length_segments_ignored() {
        let mut t = UtilizationTimeline::new();
        t.record(1.0, 1.0, 1.0);
        assert!(t.segments().is_empty());
        assert_eq!(t.horizon(), 0.0);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_panics() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 2.0, 1.0);
        t.record(1.0, 3.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_level_panics() {
        UtilizationTimeline::new().record(0.0, 1.0, 1.5);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 2.0, 0.5);
        t.record(2.0, 3.0, 1.0);
        assert!((t.busy_time() - 2.0).abs() < 1e-12);
        assert_eq!(t.horizon(), 3.0);
    }
}
