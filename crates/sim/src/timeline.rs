//! Busy-interval accounting and utilization timelines (Figure 7 substrate).
//!
//! Each device worker records `[start, end) × level` busy segments; the
//! timeline can then be sampled on a fixed grid to produce the utilization
//! curves the paper plots over three epochs.

use serde::{Deserialize, Serialize};

use crate::events::SimTime;

/// One busy interval at a given utilization level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Interval start (virtual seconds).
    pub start: SimTime,
    /// Interval end (virtual seconds).
    pub end: SimTime,
    /// Device utilization during the interval, in `[0, 1]`.
    pub level: f64,
}

/// Why [`UtilizationTimeline::try_record`] rejected an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordError {
    /// `end < start`.
    Inverted {
        /// Rejected interval start.
        start: SimTime,
        /// Rejected interval end.
        end: SimTime,
    },
    /// Level outside `[0, 1]`.
    BadLevel(f64),
    /// Interval starts before the previous segment ends.
    Overlap {
        /// Rejected interval start.
        start: SimTime,
        /// End of the already-recorded segment it overlaps.
        prev_end: SimTime,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Inverted { start, end } => {
                write!(f, "inverted interval [{start}, {end})")
            }
            RecordError::BadLevel(level) => write!(f, "level {level} outside [0,1]"),
            RecordError::Overlap { start, prev_end } => {
                write!(f, "overlapping busy intervals ({start} < {prev_end})")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Append-only record of a device's busy intervals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationTimeline {
    segments: Vec<Segment>,
}

impl UtilizationTimeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a busy interval.
    ///
    /// # Panics
    /// Panics on inverted intervals, levels outside `[0, 1]`, or intervals
    /// that start before the previous one ends (a device is sequential).
    /// Engine paths that must not crash on clock skew use
    /// [`UtilizationTimeline::try_record`] instead.
    pub fn record(&mut self, start: SimTime, end: SimTime, level: f64) {
        if let Err(e) = self.try_record(start, end, level) {
            panic!("{e}");
        }
    }

    /// Record a busy interval, rejecting malformed input instead of
    /// panicking.
    ///
    /// Returns `Err` (and leaves the timeline unchanged) on inverted
    /// intervals, levels outside `[0, 1]`, or intervals that start before
    /// the previous one ends. Zero-length intervals are accepted and
    /// ignored, as in [`UtilizationTimeline::record`].
    pub fn try_record(
        &mut self,
        start: SimTime,
        end: SimTime,
        level: f64,
    ) -> Result<(), RecordError> {
        if end < start {
            return Err(RecordError::Inverted { start, end });
        }
        if !(0.0..=1.0).contains(&level) {
            return Err(RecordError::BadLevel(level));
        }
        if let Some(last) = self.segments.last() {
            if start < last.end - 1e-12 {
                return Err(RecordError::Overlap {
                    start,
                    prev_end: last.end,
                });
            }
        }
        if end > start {
            self.segments.push(Segment { start, end, level });
        }
        Ok(())
    }

    /// All recorded segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Time-weighted mean utilization over `[from, to)` (idle counts as 0).
    pub fn average(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "empty window");
        let mut busy = 0.0;
        for s in &self.segments {
            let lo = s.start.max(from);
            let hi = s.end.min(to);
            if hi > lo {
                busy += (hi - lo) * s.level;
            }
        }
        busy / (to - from)
    }

    /// Sample mean utilization over consecutive windows of `dt` covering
    /// `[0, horizon)` — the Figure 7 plotting series.
    pub fn sample(&self, horizon: SimTime, dt: SimTime) -> Vec<(SimTime, f64)> {
        assert!(dt > 0.0, "non-positive sample step");
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < horizon {
            let hi = (t + dt).min(horizon);
            out.push((t, self.average(t, hi)));
            t = hi;
        }
        out
    }

    /// Total busy time (level-weighted) across the whole record.
    pub fn busy_time(&self) -> SimTime {
        self.segments
            .iter()
            .map(|s| (s.end - s.start) * s.level)
            .sum()
    }

    /// End time of the last segment (0 when empty).
    pub fn horizon(&self) -> SimTime {
        self.segments.last().map_or(0.0, |s| s.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_average() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 1.0, 1.0);
        t.record(1.0, 2.0, 0.5);
        // [0,2): (1*1 + 1*0.5)/2 = 0.75
        assert!((t.average(0.0, 2.0) - 0.75).abs() < 1e-12);
        // Window with idle tail [0,4): 1.5/4
        assert!((t.average(0.0, 4.0) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_windows() {
        let mut t = UtilizationTimeline::new();
        t.record(1.0, 3.0, 1.0);
        assert!((t.average(0.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((t.average(2.0, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(t.average(4.0, 5.0), 0.0);
    }

    #[test]
    fn sample_grid() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 1.0, 0.8);
        let s = t.sample(2.0, 0.5);
        assert_eq!(s.len(), 4);
        assert!((s[0].1 - 0.8).abs() < 1e-12);
        assert!((s[1].1 - 0.8).abs() < 1e-12);
        assert_eq!(s[2].1, 0.0);
    }

    #[test]
    fn zero_length_segments_ignored() {
        let mut t = UtilizationTimeline::new();
        t.record(1.0, 1.0, 1.0);
        assert!(t.segments().is_empty());
        assert_eq!(t.horizon(), 0.0);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_panics() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 2.0, 1.0);
        t.record(1.0, 3.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_level_panics() {
        UtilizationTimeline::new().record(0.0, 1.0, 1.5);
    }

    #[test]
    fn try_record_rejects_without_panicking_or_mutating() {
        let mut t = UtilizationTimeline::new();
        t.try_record(0.0, 2.0, 1.0).unwrap();
        assert_eq!(
            t.try_record(3.0, 2.5, 1.0),
            Err(RecordError::Inverted {
                start: 3.0,
                end: 2.5
            })
        );
        assert_eq!(t.try_record(2.0, 3.0, 1.5), Err(RecordError::BadLevel(1.5)));
        assert_eq!(
            t.try_record(1.0, 3.0, 1.0),
            Err(RecordError::Overlap {
                start: 1.0,
                prev_end: 2.0
            })
        );
        // Rejections left the timeline untouched; valid appends still work.
        assert_eq!(t.segments().len(), 1);
        t.try_record(2.0, 3.0, 0.5).unwrap();
        assert_eq!(t.segments().len(), 2);
        assert!((t.busy_time() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut t = UtilizationTimeline::new();
        t.record(0.0, 2.0, 0.5);
        t.record(2.0, 3.0, 1.0);
        assert!((t.busy_time() - 2.0).abs() < 1e-12);
        assert_eq!(t.horizon(), 3.0);
    }
}
