//! Deterministic virtual-time event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds. Always finite and non-negative.
pub type SimTime = f64;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion order (lower seq first) for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of future events ordered by virtual time.
///
/// Determinism contract: two events scheduled for the same instant pop in
/// the order they were scheduled. Times must be finite; scheduling a NaN
/// panics at pop time (comparison), an infinite time panics at push.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl<T> EventQueue<T> {
    /// Empty queue starting at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
            processed: 0,
        }
    }

    /// Schedule `payload` at absolute virtual time `time`.
    ///
    /// # Panics
    /// Panics if `time` is non-finite or earlier than the current time.
    pub fn schedule_at(&mut self, time: SimTime, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule in the past ({} < {})",
            time,
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Schedule `payload` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) {
        assert!(delay >= 0.0, "negative delay");
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.now, "time went backwards");
            self.now = e.time;
            self.processed += 1;
            (e.time, e.payload)
        })
    }

    /// Look at the earliest pending event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Current virtual time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The pending events in the exact order `pop` would deliver them,
    /// without disturbing the queue.
    ///
    /// This is the checkpoint/restore primitive: re-scheduling the returned
    /// events, in this order, into a fresh queue assigns them fresh
    /// monotone sequence numbers whose *relative* order matches the
    /// original — so same-time ties break identically and the restored run
    /// pops bit-identically to the uninterrupted one.
    pub fn pending_in_order(&self) -> Vec<(SimTime, &T)>
    where
        T: Sized,
    {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("event times are finite")
                .then_with(|| a.seq.cmp(&b.seq))
        });
        entries.into_iter().map(|e| (e.time, &e.payload)).collect()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.schedule_after(1.5, ());
        assert_eq!(q.peek_time(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, ());
        q.pop();
        q.schedule_at(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_panics() {
        EventQueue::new().schedule_at(f64::INFINITY, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(10.0, 10);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule_after(2.0, 3); // at t=3
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((10.0, 10)));
        assert!(q.is_empty());
    }

    #[test]
    fn pending_in_order_matches_pop_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "late");
        q.schedule_at(1.0, "tie-a");
        q.schedule_at(1.0, "tie-b");
        q.schedule_at(2.0, "mid");
        let pending: Vec<(f64, &&str)> = q.pending_in_order();
        let listed: Vec<(f64, &str)> = pending.iter().map(|(t, p)| (*t, **p)).collect();
        // Non-destructive: popping afterwards delivers the same sequence.
        let mut popped = Vec::new();
        while let Some((t, p)) = q.pop() {
            popped.push((t, p));
        }
        assert_eq!(listed, popped);
        assert_eq!(
            popped,
            vec![(1.0, "tie-a"), (1.0, "tie-b"), (2.0, "mid"), (3.0, "late")]
        );
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1.0, ());
        q.schedule_at(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
