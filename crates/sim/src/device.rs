//! Calibrated device performance models (Table I hardware).
//!
//! The models map *work* (FLOPs, bytes) to *virtual time*. They encode the
//! three effects the paper's algorithms are designed around:
//!
//! 1. **GPU throughput rises with batch size** — small kernels cannot fill
//!    80 streaming multiprocessors. Modeled by a saturating occupancy curve
//!    `occ(b) = b / (b + b½)`: ~50% utilization at the paper's lower batch
//!    threshold, ~94% at the 8192 upper threshold (matches Figure 7).
//! 2. **CPU per-thread efficiency rises with sub-batch size** — a
//!    single-example gradient (Hogwild) runs as cache-unfriendly GEMV at
//!    ~1 GFLOP/s/thread, while a 64-example sub-batch approaches MKL GEMM
//!    speed (~20 GFLOP/s/thread).
//! 3. **Accelerators pay explicit transfer and launch costs** — PCIe
//!    latency + bandwidth for batches/models, a fixed per-launch kernel
//!    overhead.
//!
//! Calibration target (§VII-B): Hogwild on CPU takes **236–317×** longer
//! per epoch than mini-batch (8192) on the V100 for the paper's networks.
//! A test in this module pins the covtype configuration inside that band.

use serde::{Deserialize, Serialize};

use crate::events::SimTime;

/// A device that can execute SGD batches in virtual time.
pub trait DeviceModel: Send + Sync {
    /// Human-readable device name.
    fn name(&self) -> &str;

    /// Virtual seconds to compute one gradient over `batch` examples of a
    /// network costing `flops_per_example` FLOPs per example (forward +
    /// backward).
    fn batch_time(&self, flops_per_example: u64, batch: usize) -> SimTime;

    /// Device utilization (0..=1) *while* processing a batch of this size.
    fn busy_utilization(&self, batch: usize) -> f64;

    /// Virtual seconds to move `bytes` between host and device memory
    /// (zero for host-resident devices).
    fn transfer_time(&self, bytes: u64) -> SimTime;

    /// Device memory capacity in bytes (bounds the batch size).
    fn memory_capacity(&self) -> u64;

    /// True for accelerators that need deep-copy model replicas.
    fn is_accelerator(&self) -> bool;

    /// Largest batch that fits in device memory for a network whose
    /// activations cost `bytes_per_example` and whose parameters cost
    /// `model_bytes` (model + gradient + workspace ≈ 3× parameters).
    fn max_batch(&self, bytes_per_example: u64, model_bytes: u64) -> usize {
        let reserve = 3 * model_bytes;
        let avail = self.memory_capacity().saturating_sub(reserve);
        (avail / bytes_per_example.max(1)) as usize
    }
}

/// V100-like accelerator model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device name.
    pub name: String,
    /// Peak single-precision throughput (FLOP/s).
    pub peak_flops: f64,
    /// Batch size at which occupancy reaches 50%.
    pub occupancy_half_batch: f64,
    /// Fixed kernel-launch overhead per batch (all kernels of one step).
    pub launch_overhead: SimTime,
    /// PCIe latency per transfer.
    pub transfer_latency: SimTime,
    /// PCIe bandwidth (bytes/s).
    pub transfer_bandwidth: f64,
    /// Global memory capacity (bytes).
    pub memory: u64,
}

impl GpuModel {
    /// NVIDIA Volta V100 (Table I): 80 MPs, 16 GB HBM2, ~15.7 TFLOP/s fp32,
    /// PCIe 3.0 x16 (~12 GB/s effective).
    pub fn v100() -> Self {
        GpuModel {
            name: "V100".into(),
            peak_flops: 15.7e12,
            occupancy_half_batch: 512.0,
            launch_overhead: 250e-6,
            transfer_latency: 10e-6,
            transfer_bandwidth: 12e9,
            memory: 16 * (1 << 30),
        }
    }

    /// Occupancy (fraction of peak) achieved by a batch of `b` examples.
    pub fn occupancy(&self, b: usize) -> f64 {
        let b = b as f64;
        b / (b + self.occupancy_half_batch)
    }
}

impl DeviceModel for GpuModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn batch_time(&self, flops_per_example: u64, batch: usize) -> SimTime {
        if batch == 0 {
            return 0.0;
        }
        let flops = flops_per_example as f64 * batch as f64;
        let effective = self.peak_flops * self.occupancy(batch);
        self.launch_overhead + flops / effective
    }

    fn busy_utilization(&self, batch: usize) -> f64 {
        self.occupancy(batch)
    }

    fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return 0.0;
        }
        self.transfer_latency + bytes as f64 / self.transfer_bandwidth
    }

    fn memory_capacity(&self) -> u64 {
        self.memory
    }

    fn is_accelerator(&self) -> bool {
        true
    }
}

/// Dual-socket Xeon-like CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Device name.
    pub name: String,
    /// Worker threads performing model updates (paper: 56 of 64).
    pub threads: usize,
    /// Total hardware threads (denominator of the utilization metric).
    pub hw_threads: usize,
    /// Per-thread throughput on single-example (GEMV-like) work.
    pub flops_small: f64,
    /// Per-thread throughput on large sub-batches (GEMM-like, MKL speed).
    pub flops_large: f64,
    /// Sub-batch size at which a thread reaches half way between the two.
    pub batch_half: f64,
    /// Fixed per-batch dispatch overhead (OpenMP fork/join, queue pop).
    pub dispatch_overhead: SimTime,
    /// Host memory capacity (bytes).
    pub memory: u64,
}

impl CpuModel {
    /// The paper's host: 2× 18-core Xeon, 56 worker threads of 64,
    /// 488 GB RAM (Table I / §VII-A).
    pub fn xeon_pair() -> Self {
        CpuModel {
            name: "2xXeon".into(),
            threads: 56,
            hw_threads: 64,
            flops_small: 1.0e9,
            flops_large: 20.0e9,
            batch_half: 32.0,
            dispatch_overhead: 5e-6,
            memory: 488 * (1 << 30),
        }
    }

    /// Effective per-thread throughput for a sub-batch of `b` examples.
    ///
    /// Saturating curve anchored so that `b = 1` runs at exactly
    /// [`CpuModel::flops_small`] (a one-example gradient is pure GEMV).
    pub fn thread_flops(&self, b: usize) -> f64 {
        let x = (b.max(1) - 1) as f64;
        self.flops_small + (self.flops_large - self.flops_small) * x / (x + self.batch_half)
    }
}

impl DeviceModel for CpuModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn batch_time(&self, flops_per_example: u64, batch: usize) -> SimTime {
        if batch == 0 {
            return 0.0;
        }
        // The worker splits the batch into `threads` sub-batches processed
        // in parallel (Algorithm 2, CPU worker). Time is governed by the
        // largest sub-batch.
        let sub = batch.div_ceil(self.threads);
        let flops = flops_per_example as f64 * sub as f64;
        self.dispatch_overhead + flops / self.thread_flops(sub)
    }

    fn busy_utilization(&self, batch: usize) -> f64 {
        batch.min(self.threads) as f64 / self.hw_threads as f64
    }

    fn transfer_time(&self, _bytes: u64) -> SimTime {
        0.0 // host-resident: model and data are shared by reference
    }

    fn memory_capacity(&self) -> u64 {
        self.memory
    }

    fn is_accelerator(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// covtype network (§VII-A): d=54, 6 hidden × 512, 2 classes.
    fn covtype_flops_per_example() -> u64 {
        let dims = [
            (54usize, 512usize),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 2),
        ];
        3 * dims
            .iter()
            .map(|&(i, o)| 2 * (i as u64) * (o as u64))
            .sum::<u64>()
    }

    #[test]
    fn gpu_occupancy_matches_paper_thresholds() {
        let gpu = GpuModel::v100();
        // Paper: lower threshold ≈ 50% utilization, 8192 ≈ 100%.
        assert!((gpu.occupancy(512) - 0.5).abs() < 0.01);
        assert!(gpu.occupancy(8192) > 0.9);
        assert!(gpu.occupancy(1) < 0.01);
    }

    #[test]
    fn cpu_thread_flops_grows_with_subbatch() {
        let cpu = CpuModel::xeon_pair();
        assert!(cpu.thread_flops(1) < 2.0e9);
        assert!(cpu.thread_flops(64) > 12.0e9);
        assert!(cpu.thread_flops(1024) > 19.0e9);
    }

    #[test]
    fn hogwild_vs_minibatch_epoch_ratio_in_paper_band() {
        // §VII-B: "Hogwild CPU takes considerably longer – from 236X to
        // 317X – to execute an SGD epoch than GPU".
        let gpu = GpuModel::v100();
        let cpu = CpuModel::xeon_pair();
        let fpe = covtype_flops_per_example();
        let n = 581_012usize;

        // GPU mini-batch, 8192/batch, with batch transfer each step.
        let gpu_batch = 8192usize;
        let batches = n.div_ceil(gpu_batch);
        let batch_bytes = (gpu_batch * 54 * 4) as u64;
        let gpu_epoch =
            batches as f64 * (gpu.batch_time(fpe, gpu_batch) + gpu.transfer_time(batch_bytes));

        // CPU Hogwild: 1 example per thread per batch → batch = 56.
        let cpu_batch = cpu.threads;
        let cpu_epoch = (n as f64 / cpu_batch as f64) * cpu.batch_time(fpe, cpu_batch);

        let ratio = cpu_epoch / gpu_epoch;
        assert!(
            (200.0..350.0).contains(&ratio),
            "epoch ratio {ratio:.0}x outside the paper's band"
        );
    }

    #[test]
    fn gpu_batch_time_monotone_in_batch() {
        let gpu = GpuModel::v100();
        let fpe = 1_000_000;
        let mut prev = 0.0;
        for b in [1, 16, 256, 4096, 65536] {
            let t = gpu.batch_time(fpe, b);
            assert!(t > prev, "batch {b} not slower than smaller batch");
            prev = t;
        }
    }

    #[test]
    fn gpu_throughput_monotone_in_batch() {
        // Larger batches give better examples/second.
        let gpu = GpuModel::v100();
        let fpe = 1_000_000;
        let mut prev = 0.0;
        for b in [1usize, 16, 256, 4096, 65536] {
            let thpt = b as f64 / gpu.batch_time(fpe, b);
            assert!(thpt > prev, "throughput not monotone at {b}");
            prev = thpt;
        }
    }

    #[test]
    fn zero_batch_costs_nothing() {
        assert_eq!(GpuModel::v100().batch_time(1000, 0), 0.0);
        assert_eq!(CpuModel::xeon_pair().batch_time(1000, 0), 0.0);
        assert_eq!(GpuModel::v100().transfer_time(0), 0.0);
    }

    #[test]
    fn transfer_time_linear_in_bytes() {
        let gpu = GpuModel::v100();
        let t1 = gpu.transfer_time(1 << 20);
        let t2 = gpu.transfer_time(1 << 21);
        let marginal = t2 - t1;
        assert!((marginal - (1 << 20) as f64 / gpu.transfer_bandwidth).abs() < 1e-9);
    }

    #[test]
    fn cpu_utilization_caps_at_thread_ratio() {
        let cpu = CpuModel::xeon_pair();
        // 56/64 = 0.875 — the "hovers around 80%" of Figure 7.
        assert!((cpu.busy_utilization(10_000) - 0.875).abs() < 1e-9);
        assert!(cpu.busy_utilization(28) < 0.5);
    }

    #[test]
    fn max_batch_respects_memory() {
        let gpu = GpuModel::v100();
        // 1 MB per example, 1 GB model: (16 - 3) GB / 1 MB = ~13312.
        let mb = gpu.max_batch(1 << 20, 1 << 30);
        assert!((13_000..14_000).contains(&mb), "max_batch {mb}");
        // CPU memory is much larger.
        assert!(CpuModel::xeon_pair().max_batch(1 << 20, 1 << 30) > 400_000);
    }

    #[test]
    fn table1_capacities() {
        assert_eq!(GpuModel::v100().memory_capacity(), 16 * (1 << 30));
        assert_eq!(CpuModel::xeon_pair().memory_capacity(), 488 * (1 << 30));
        assert!(GpuModel::v100().is_accelerator());
        assert!(!CpuModel::xeon_pair().is_accelerator());
    }
}
