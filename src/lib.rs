//! # hetero-sgd
//!
//! A Rust reproduction of *"Adaptive Stochastic Gradient Descent for Deep
//! Learning on Heterogeneous CPU+GPU Architectures"* (Ma, Rusu, Wu, Sim —
//! 2021): a coordinator/worker training framework that runs asynchronous
//! Hogwild-style SGD on the CPU **concurrently** with large-batch
//! mini-batch SGD on the GPU, against one shared model, with batch sizes
//! that adapt at runtime to balance the update distribution.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `hetero-tensor` | dense matrices, blocked/parallel GEMM |
//! | [`mq`] | `hetero-mq` | lock-free MPSC queue, blocking channel |
//! | [`nn`] | `hetero-nn` | MLP forward/backward, losses, shared Hogwild model |
//! | [`data`] | `hetero-data` | LIBSVM parser, synthetic paper datasets, batch schedule |
//! | [`sim`] | `hetero-sim` | virtual clock, V100/Xeon performance models |
//! | [`gpu`] | `hetero-gpu` | software GPU: allocator, streams, kernels |
//! | [`core`] | `hetero-core` | coordinator/workers, Hogbatch algorithms, engines |
//! | [`trace`] | `hetero-trace` | event tracing, counters, Chrome-trace export |
//! | [`metrics`] | `hetero-metrics` | histograms, OpenMetrics export, live dashboard |
//! | [`flight`] | `hetero-flight` | black-box recorder, health watchdog, postmortems |
//! | [`ckpt`] | `hetero-ckpt` | crash-consistent checkpoint/restore |
//!
//! ## Quickstart
//!
//! ```
//! use hetero_sgd::prelude::*;
//!
//! // A small two-class dataset with the paper's covtype-like shape.
//! let dataset = PaperDataset::Covtype.generate(0.0002, 42);
//! let spec = MlpSpec {
//!     input_dim: dataset.features(),
//!     hidden: vec![32, 32],
//!     classes: 2,
//!     activation: Activation::Sigmoid,
//!     loss: LossKind::SoftmaxCrossEntropy,
//! };
//! let mut train = TrainConfig::default();
//! train.algorithm = AlgorithmKind::AdaptiveHogbatch;
//! train.time_budget = 0.01; // virtual seconds
//! let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train)).unwrap();
//! let result = engine.run(&dataset);
//! assert!(result.final_loss().is_finite());
//! ```

pub use hetero_ckpt as ckpt;
pub use hetero_core as core;
pub use hetero_data as data;
pub use hetero_flight as flight;
pub use hetero_gpu as gpu;
pub use hetero_metrics as metrics;
pub use hetero_mq as mq;
pub use hetero_nn as nn;
pub use hetero_sim as sim;
pub use hetero_tensor as tensor;
pub use hetero_trace as trace;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use hetero_ckpt::{Checkpointer, CkptConfig, CkptStore};
    pub use hetero_core::{
        AdaptiveController, AdaptiveParams, AlgorithmKind, FaultKind, FaultPlan, LossPoint,
        LrScaling, SimEngine, SimEngineConfig, ThreadedEngine, ThreadedEngineConfig, TrainConfig,
        TrainResult, WorkerError, WorkerKind,
    };
    pub use hetero_data::{BatchScheduler, DenseDataset, Labels, PaperDataset, SynthConfig};
    pub use hetero_flight::{FlightConfig, FlightRecorder};
    pub use hetero_metrics::{DashboardFrame, Metric, MetricsHub, ScrapeServer, Summary};
    pub use hetero_nn::{Activation, InitScheme, LossKind, MlpSpec, Model, SharedModel, Targets};
    pub use hetero_sim::{CpuModel, DeviceModel, GpuModel};
    pub use hetero_tensor::Matrix;
}
