//! `hetero-train` — command-line front end for the training framework.
//!
//! ```text
//! hetero-train [--dataset covtype|w8a|delicious|real-sim]
//!              [--algorithm hogwild-cpu|minibatch-gpu|tensorflow|cpu-gpu|omnivore|adaptive]
//!              [--engine sim|threads|ps]
//!              [--scale 0.005] [--width 64] [--depth N]
//!              [--budget 0.2] [--lr 0.01] [--gpu-batch 8192]
//!              [--alpha 2.0] [--beta 1.0] [--kappa 0.0]
//!              [--ckpt-dir results/ckpt] [--ckpt-interval 0.05]
//!              [--ckpt-retain 2] [--resume]
//!              [--seed 42] [--json]
//! ```
//!
//! With `--ckpt-dir` the run publishes crash-consistent checkpoints every
//! `--ckpt-interval` seconds (virtual for sim/ps, wall for threads) and
//! `--resume` continues from the newest valid generation in that directory.
//!
//! Prints a human-readable summary, or the full `TrainResult` as JSON with
//! `--json` (for piping into plotting scripts).

use std::sync::Arc;

use hetero_sgd::prelude::*;

struct Args {
    dataset: PaperDataset,
    algorithm: AlgorithmKind,
    engine: String,
    scale: f64,
    width: usize,
    depth: Option<usize>,
    budget: f64,
    lr: f32,
    gpu_batch: usize,
    alpha: f64,
    beta: f64,
    kappa: f32,
    ckpt_dir: Option<String>,
    ckpt_interval: f64,
    ckpt_retain: usize,
    resume: bool,
    seed: u64,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: PaperDataset::Covtype,
        algorithm: AlgorithmKind::AdaptiveHogbatch,
        engine: "sim".into(),
        scale: 0.005,
        width: 64,
        depth: None,
        budget: 0.2,
        lr: 0.01,
        gpu_batch: 8192,
        alpha: 2.0,
        beta: 1.0,
        kappa: 0.0,
        ckpt_dir: None,
        ckpt_interval: 0.05,
        ckpt_retain: 2,
        resume: false,
        seed: 42,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--json" {
            args.json = true;
            i += 1;
            continue;
        }
        if flag == "--resume" {
            args.resume = true;
            i += 1;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            return Err("help".into());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--dataset" => {
                args.dataset = PaperDataset::from_name(value)
                    .ok_or_else(|| format!("unknown dataset '{value}'"))?;
            }
            "--algorithm" => {
                args.algorithm = match value.as_str() {
                    "hogwild-cpu" | "hogbatch-cpu" => AlgorithmKind::HogwildCpu,
                    "minibatch-gpu" | "hogbatch-gpu" => AlgorithmKind::MiniBatchGpu,
                    "tensorflow" | "tf" => AlgorithmKind::TensorFlow,
                    "cpu-gpu" | "cpu+gpu" => AlgorithmKind::CpuGpuHogbatch,
                    "omnivore" | "static" => AlgorithmKind::StaticProportional,
                    "adaptive" => AlgorithmKind::AdaptiveHogbatch,
                    other => return Err(format!("unknown algorithm '{other}'")),
                };
            }
            "--engine" => args.engine = value.clone(),
            "--scale" => args.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--width" => args.width = value.parse().map_err(|e| format!("--width: {e}"))?,
            "--depth" => args.depth = Some(value.parse().map_err(|e| format!("--depth: {e}"))?),
            "--budget" => args.budget = value.parse().map_err(|e| format!("--budget: {e}"))?,
            "--lr" => args.lr = value.parse().map_err(|e| format!("--lr: {e}"))?,
            "--gpu-batch" => {
                args.gpu_batch = value.parse().map_err(|e| format!("--gpu-batch: {e}"))?
            }
            "--alpha" => args.alpha = value.parse().map_err(|e| format!("--alpha: {e}"))?,
            "--beta" => args.beta = value.parse().map_err(|e| format!("--beta: {e}"))?,
            "--kappa" => args.kappa = value.parse().map_err(|e| format!("--kappa: {e}"))?,
            "--ckpt-dir" => args.ckpt_dir = Some(value.clone()),
            "--ckpt-interval" => {
                args.ckpt_interval = value.parse().map_err(|e| format!("--ckpt-interval: {e}"))?
            }
            "--ckpt-retain" => {
                args.ckpt_retain = value.parse().map_err(|e| format!("--ckpt-retain: {e}"))?
            }
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: hetero-train [--dataset covtype|w8a|delicious|real-sim] \\\n\
                 \t[--algorithm hogwild-cpu|minibatch-gpu|tensorflow|cpu-gpu|omnivore|adaptive] \\\n\
                 \t[--engine sim|threads] [--scale F] [--width N] [--depth N] [--budget S] \\\n\
                 \t[--lr F] [--gpu-batch N] [--alpha F] [--beta F] [--kappa F] \\\n\
                 \t[--ckpt-dir DIR] [--ckpt-interval S] [--ckpt-retain N] [--resume] \\\n\
                 \t[--seed N] [--json]"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };

    let stats = args.dataset.stats();
    let dataset = args
        .dataset
        .generate(args.scale.clamp(1e-6, 1.0), args.seed);
    let depth = args.depth.unwrap_or(stats.hidden_layers);
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![args.width; depth],
        classes: dataset.num_classes(),
        activation: Activation::Sigmoid,
        loss: if stats.multilabel {
            LossKind::MultiLabelBce
        } else {
            LossKind::SoftmaxCrossEntropy
        },
    };
    eprintln!(
        "{}: {} examples × {} features, {} classes | {} hidden layers × {} units | {}",
        dataset.name,
        dataset.len(),
        dataset.features(),
        dataset.num_classes(),
        depth,
        args.width,
        args.algorithm.label()
    );

    let n = dataset.len();
    let gpu_max = args.gpu_batch.min(n.max(64));
    let train = TrainConfig {
        init: hetero_nn::InitScheme::XavierSigmoid,
        algorithm: args.algorithm,
        lr: args.lr,
        lr_scaling: LrScaling::Sqrt {
            ref_batch: 1,
            max_lr: 0.5,
        },
        cpu_batch_per_thread: 1,
        gpu_batch: gpu_max,
        adaptive: AdaptiveParams {
            alpha: args.alpha,
            beta: args.beta,
            cpu_min_batch: 56,
            cpu_max_batch: 56 * 256,
            gpu_min_batch: (gpu_max / 16).max(16),
            gpu_max_batch: gpu_max,
        },
        time_budget: args.budget,
        max_epochs: None,
        grad_clip: None,
        weight_decay: 0.0,
        staleness_discount: args.kappa,
        rayon_threads: 0,
        measured_beta: false,
        eval_interval: args.budget / 20.0,
        eval_subsample: 2048,
        ckpt_interval: args.ckpt_dir.as_ref().map(|_| args.ckpt_interval),
        ckpt_retain: args.ckpt_retain.max(1),
        seed: args.seed,
    };

    // Crash-consistency checkpointing, when a directory was given: the
    // TrainConfig carries the cadence for provenance, the Checkpointer
    // does the publishing/resuming.
    let ckpt = match (&args.ckpt_dir, train.ckpt_interval) {
        (Some(dir), Some(interval)) => Checkpointer::new(CkptConfig {
            dir: std::path::PathBuf::from(dir),
            interval,
            retain: train.ckpt_retain,
            resume: args.resume,
        })
        .unwrap_or_else(|e| {
            eprintln!("checkpoint error: {e}");
            std::process::exit(2);
        }),
        _ => Checkpointer::disabled(),
    };
    if args.resume {
        match ckpt.latest_path() {
            Some(p) => eprintln!("resuming from {}", p.display()),
            None => eprintln!("--resume: no valid checkpoint found, starting fresh"),
        }
    }
    let sink = hetero_sgd::trace::TraceSink::disabled();
    let hub = MetricsHub::disabled();
    let flight = FlightRecorder::disabled();

    let result = match args.engine.as_str() {
        "sim" => {
            let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train))
                .unwrap_or_else(|e| {
                    eprintln!("config error: {e}");
                    std::process::exit(2);
                });
            engine.run_ckpt(&dataset, &sink, &hub, &flight, &ckpt)
        }
        "threads" => {
            let threads = std::thread::available_parallelism()
                .map(|v| v.get().saturating_sub(2).max(2))
                .unwrap_or(4);
            let engine = ThreadedEngine::new(ThreadedEngineConfig {
                spec,
                train,
                cpu_threads: threads,
                gpu_perf: GpuModel::v100(),
                gpu_workers: 1,
                fault_plan: FaultPlan::none(),
            })
            .unwrap_or_else(|e| {
                eprintln!("config error: {e}");
                std::process::exit(2);
            });
            engine.run_ckpt(Arc::new(dataset), &sink, &hub, &flight, &ckpt)
        }
        "ps" => {
            // Distributed parameter-server comparator (§II): one Xeon + one
            // V100 worker over 10 GbE, update-count lr compensation.
            let batch = gpu_max.min(dataset.len() / 2).max(1);
            let engine = hetero_sgd::core::PsEngine::new(hetero_sgd::core::PsEngineConfig {
                spec,
                train,
                cpu_workers: vec![CpuModel::xeon_pair()],
                gpu_workers: vec![GpuModel::v100()],
                batch,
                network: hetero_sgd::core::NetworkModel::ten_gbe(),
                lr_compensation: 1.0,
            })
            .unwrap_or_else(|e| {
                eprintln!("config error: {e}");
                std::process::exit(2);
            });
            engine.run_ckpt(&dataset, &flight, &ckpt)
        }
        other => {
            eprintln!("unknown engine '{other}' (expected sim|threads|ps)");
            std::process::exit(2);
        }
    };

    if let Some(p) = ckpt.latest_path() {
        eprintln!("resumable from {}", p.display());
    }
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serializable result")
        );
    } else {
        println!(
            "loss {:.5} -> {:.5} (min {:.5}) | {:.2} epochs in {:.3}s",
            result.initial_loss(),
            result.final_loss(),
            result.min_loss(),
            result.epochs,
            result.duration
        );
        for w in result.workers.iter().filter(|w| w.batches > 0) {
            println!(
                "  {:?}: {} batches / {} examples / {:.0} updates (final batch {})",
                w.kind, w.batches, w.examples, w.updates, w.final_batch
            );
        }
        if result.total_updates() > 0.0 {
            println!(
                "  CPU update share: {:.1}%",
                100.0 * result.cpu_update_fraction()
            );
        }
    }
}
