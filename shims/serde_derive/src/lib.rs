//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! targeting the value-tree traits in the companion `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenTree` (no syn/quote, which are
//! unavailable offline). Supports what this workspace actually derives:
//! non-generic structs with named fields, and enums with unit, tuple, and
//! struct variants. The only serde attribute honoured is `#[serde(skip)]`
//! (omit on serialize, `Default::default()` on deserialize); any other
//! serde attribute is a hard error so unsupported shapes fail loudly at
//! compile time instead of silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// Derive `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => serialize_struct_body(fields),
        Shape::Enum(variants) => serialize_enum_body(&name, variants),
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    code.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => deserialize_struct_body(&name, fields),
        Shape::Enum(variants) => deserialize_enum_body(&name, variants),
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    );
    code.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut iter: TokenIter = input.into_iter().peekable();
    // Scan past attributes and visibility to the `struct`/`enum` keyword.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc — the restriction group is
                // consumed by the Group arm below.
            }
            Some(TokenTree::Group(_)) => {}
            Some(_) => {}
            None => panic!("serde shim derive: no struct/enum keyword found"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic types are not supported")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple structs are not supported")
            }
            Some(_) => {}
            None => panic!("serde shim derive: `{name}` has no body"),
        }
    };
    let shape = if kind == "struct" {
        Shape::Struct(parse_named_fields(body.stream()))
    } else {
        Shape::Enum(parse_variants(body.stream()))
    };
    (name, shape)
}

/// `true` if the attribute content is `serde(skip)`; panics on any other
/// serde attribute; `false` (ignored) for doc/default/etc.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    if let Some(TokenTree::Group(args)) = iter.next() {
        let items: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
        if items.len() == 1 && items[0] == "skip" {
            return true;
        }
        panic!(
            "serde shim derive: unsupported serde attribute `serde({})`",
            items.join("")
        );
    }
    panic!("serde shim derive: unsupported bare `serde` attribute");
}

/// Consume leading `#[...]` attributes; returns whether any was
/// `#[serde(skip)]`.
fn eat_attrs(iter: &mut TokenIter) -> bool {
    let mut skip = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(g.stream());
            }
            other => panic!("serde shim derive: malformed attribute {other:?}"),
        }
    }
    skip
}

/// Consume `pub` / `pub(crate)` visibility if present.
fn eat_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

/// Consume a type (everything up to a top-level `,`), tracking `<...>`
/// nesting so commas inside generics don't terminate early.
fn eat_type_until_comma(iter: &mut TokenIter) {
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter: TokenIter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut iter);
        eat_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        eat_type_until_comma(&mut iter);
        fields.push(Field { name, skip });
    }
    fields
}

/// Count top-level comma-separated items in a tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter: TokenIter = stream.into_iter().peekable();
    if iter.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tt in iter {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter: TokenIter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut iter); // #[default], doc comments
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Trailing comma separating variants (or end of body). Explicit
        // discriminants (`= expr`) don't occur on serde-derived enums here.
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, kind });
                break;
            }
            other => {
                panic!("serde shim derive: unexpected token after variant `{name}`: {other:?}")
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn push_field_lines(fields: &[Field], access_prefix: &str, obj_var: &str) -> String {
    let mut out = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        out.push_str(&format!(
            "{obj_var}.push((::std::string::String::from(\"{fname}\"), \
             ::serde::Serialize::to_value({access_prefix}{fname})));\n"
        ));
    }
    out
}

fn serialize_struct_body(fields: &[Field]) -> String {
    let mut body = String::from(
        "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
         = ::std::vec::Vec::new();\n",
    );
    body.push_str(&push_field_lines(fields, "&self.", "__obj"));
    body.push_str("::serde::Value::Object(__obj)");
    body
}

fn deserialize_struct_body(name: &str, fields: &[Field]) -> String {
    let mut body = format!(
        "let __obj = match v {{\n\
             ::serde::Value::Object(o) => o,\n\
             _ => return ::core::result::Result::Err(::serde::DeError::msg(\
                 \"expected object for `{name}`\")),\n\
         }};\n\
         ::core::result::Result::Ok({name} {{\n"
    );
    for f in fields {
        let fname = &f.name;
        if f.skip {
            body.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
        } else {
            body.push_str(&format!(
                "{fname}: ::serde::__field(__obj, \"{fname}\")?,\n"
            ));
        }
    }
    body.push_str("})");
    body
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut body = String::from("match self {\n");
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                body.push_str(&format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                body.push_str(&format!(
                    "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Serialize::to_value(__f0))]),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let vals: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                body.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Array(::std::vec![{}]))]),\n",
                    binds.join(", "),
                    vals.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __vo: ::std::vec::Vec<(::std::string::String, \
                     ::serde::Value)> = ::std::vec::Vec::new();\n",
                    binds.join(", ")
                );
                arm.push_str(&push_field_lines(fields, "", "__vo"));
                arm.push_str(&format!(
                    "::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(__vo))])\n}}\n"
                ));
                body.push_str(&arm);
            }
        }
    }
    body.push('}');
    body
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__inner)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => match __inner {{\n\
                         ::serde::Value::Array(__a) if __a.len() == {n} => \
                         ::core::result::Result::Ok({name}::{vname}({})),\n\
                         _ => ::core::result::Result::Err(::serde::DeError::msg(\
                             \"expected {n}-element array for `{name}::{vname}`\")),\n\
                     }},\n",
                    elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    let fname = &f.name;
                    if f.skip {
                        inits.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
                    } else {
                        inits
                            .push_str(&format!("{fname}: ::serde::__field(__fo, \"{fname}\")?,\n"));
                    }
                }
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => match __inner {{\n\
                         ::serde::Value::Object(__fo) => \
                         ::core::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n\
                         _ => ::core::result::Result::Err(::serde::DeError::msg(\
                             \"expected object for `{name}::{vname}`\")),\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "match v {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => ::core::result::Result::Err(::serde::DeError::msg(::std::format!(\
                     \"unknown `{name}` variant `{{}}`\", __s))),\n\
             }},\n\
             ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __inner) = &__o[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\
                     _ => ::core::result::Result::Err(::serde::DeError::msg(::std::format!(\
                         \"unknown `{name}` variant `{{}}`\", __tag))),\n\
                 }}\n\
             }}\n\
             _ => ::core::result::Result::Err(::serde::DeError::msg(\
                 \"expected string or single-key object for `{name}`\")),\n\
         }}"
    )
}
