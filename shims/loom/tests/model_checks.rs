//! Self-tests for the vendored loom shim: the checker must (a) explore real
//! interleavings, (b) prove correct protocols clean, and (c) catch seeded
//! ordering bugs, races, and deadlocks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::{model, thread};

/// Run `f` expecting the model to panic; returns the panic text.
fn expect_model_failure(f: impl Fn() + Send + Sync + 'static) -> String {
    let out = catch_unwind(AssertUnwindSafe(|| model(f)));
    match out {
        Ok(()) => panic!("model unexpectedly passed"),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::new()
            }
        }
    }
}

#[test]
fn concurrent_fetch_add_is_exact() {
    model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 4);
    });
}

#[test]
fn explores_multiple_schedules() {
    static SCHEDULES: StdAtomicUsize = StdAtomicUsize::new(0);
    model(|| {
        SCHEDULES.fetch_add(1, StdOrdering::Relaxed);
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        // Both outcomes of this load must be explored.
        let _ = flag.load(Ordering::Acquire);
        h.join().unwrap();
    });
    assert!(
        SCHEDULES.load(StdOrdering::Relaxed) > 1,
        "only {} schedule(s) explored",
        SCHEDULES.load(StdOrdering::Relaxed)
    );
}

#[test]
fn release_acquire_publish_is_clean() {
    model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let h = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: the release store below publishes this write; no
                // concurrent reader exists until the flag is observed.
                unsafe { *p = 7 }
            });
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            let v = cell.with(|p| {
                // SAFETY: acquire load observed the release store, so the
                // write above happens-before this read.
                unsafe { *p }
            });
            assert_eq!(v, 7);
        }
        h.join().unwrap();
    });
}

#[test]
fn relaxed_publish_is_reported_as_race() {
    let msg = expect_model_failure(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let h = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: deliberately unpublished — the shim must refuse
                // the cross-thread read below before memory is touched.
                unsafe { *p = 7 }
            });
            // BUG under test: Relaxed store does not publish the write.
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            cell.with(|p| {
                // SAFETY: never reached — the checker panics first.
                unsafe { *p }
            });
        }
        h.join().unwrap();
    });
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

#[test]
fn release_rmw_continues_release_sequence() {
    model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let h = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: published by the release RMW below.
                unsafe { *p = 9 }
            });
            f2.swap(1, Ordering::AcqRel);
        });
        if flag.load(Ordering::Acquire) == 1 {
            let v = cell.with(|p| {
                // SAFETY: acquire load of the release RMW orders the write.
                unsafe { *p }
            });
            assert_eq!(v, 9);
        }
        h.join().unwrap();
    });
}

#[test]
fn join_is_a_synchronization_edge() {
    model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let c2 = Arc::clone(&cell);
        let h = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: published by the join edge; the parent reads only
                // after join() returns.
                unsafe { *p = 3 }
            });
        });
        h.join().unwrap();
        let v = cell.with(|p| {
            // SAFETY: join() ordered the child's write before this read.
            unsafe { *p }
        });
        assert_eq!(v, 3);
    });
}

#[test]
fn mutex_condvar_handoff_terminates() {
    model(|| {
        let slot = Arc::new(Mutex::new(None::<u32>));
        let cv = Arc::new(Condvar::new());
        let (s2, c2) = (Arc::clone(&slot), Arc::clone(&cv));
        let h = thread::spawn(move || {
            let mut guard = s2.lock();
            *guard = Some(5);
            drop(guard);
            c2.notify_one();
        });
        let mut guard = slot.lock();
        while guard.is_none() {
            cv.wait(&mut guard);
        }
        assert_eq!(*guard, Some(5));
        drop(guard);
        h.join().unwrap();
    });
}

#[test]
fn spin_loop_yields_instead_of_livelocking() {
    model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            loom::hint::spin_loop();
        }
        h.join().unwrap();
    });
}

#[test]
fn abba_deadlock_is_detected() {
    let msg = expect_model_failure(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        h.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}
