//! Model-checked synchronization primitives: atomics with release/acquire
//! clock propagation, and a parking_lot-flavoured `Mutex`/`Condvar` pair
//! (guards returned directly, `Condvar::wait(&mut guard)`), matching the API
//! surface the workspace's `parking_lot` shim exposes.

use std::sync::Arc as StdArc;
use std::time::Instant;

use crate::rt::{self, Attempt, Status};

pub use std::sync::Arc;

/// Atomic types with model-checked ordering semantics.
pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    fn is_acquire(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// Shared core of every atomic type: the value plus a location id in the
    /// execution's sync-clock table.
    #[derive(Debug)]
    struct Atomic<T: Copy> {
        exec: StdArc<rt::Execution>,
        id: usize,
        val: std::cell::UnsafeCell<T>,
    }

    // SAFETY: `val` is only read or written inside `Execution::op`, which
    // serializes access under the execution's state lock while the owning
    // thread holds the scheduler token.
    unsafe impl<T: Copy + Send> Send for Atomic<T> {}
    // SAFETY: as above — all access is serialized by the model runtime.
    unsafe impl<T: Copy + Send> Sync for Atomic<T> {}

    impl<T: Copy + PartialEq> Atomic<T> {
        fn new(value: T) -> Self {
            let (exec, _) = rt::ctx();
            let id = exec.register_atomic();
            Atomic {
                exec,
                id,
                val: std::cell::UnsafeCell::new(value),
            }
        }

        fn load(&self, ord: Ordering) -> T {
            self.exec.op(|st, tid| {
                if is_acquire(ord) {
                    let sync = st.atomics[self.id].sync.clone();
                    st.threads[tid].vc.join(&sync);
                }
                // SAFETY: serialized under the state lock (see Sync impl).
                Attempt::Ready(unsafe { *self.val.get() })
            })
        }

        fn store(&self, value: T, ord: Ordering) {
            self.exec.op(|st, tid| {
                if is_release(ord) {
                    st.atomics[self.id].sync = st.threads[tid].vc.clone();
                } else {
                    // A plain relaxed store breaks the release sequence: a
                    // later acquire load of this value synchronizes with
                    // nothing.
                    st.atomics[self.id].sync.clear();
                }
                // SAFETY: serialized under the state lock (see Sync impl).
                unsafe { *self.val.get() = value };
                Attempt::Ready(())
            })
        }

        /// Read-modify-write: returns the previous value. RMWs continue the
        /// release sequence, so a relaxed RMW leaves the location's sync
        /// clock in place.
        fn rmw(&self, f: impl Fn(T) -> T, ord: Ordering) -> T {
            self.exec.op(|st, tid| {
                if is_acquire(ord) {
                    let sync = st.atomics[self.id].sync.clone();
                    st.threads[tid].vc.join(&sync);
                }
                if is_release(ord) {
                    let vc = st.threads[tid].vc.clone();
                    st.atomics[self.id].sync.join(&vc);
                }
                // SAFETY: serialized under the state lock (see Sync impl).
                let old = unsafe { *self.val.get() };
                // SAFETY: as above.
                unsafe { *self.val.get() = f(old) };
                Attempt::Ready(old)
            })
        }

        fn compare_exchange(
            &self,
            current: T,
            new: T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<T, T> {
            self.exec.op(|st, tid| {
                // SAFETY: serialized under the state lock (see Sync impl).
                let old = unsafe { *self.val.get() };
                if old == current {
                    if is_acquire(success) {
                        let sync = st.atomics[self.id].sync.clone();
                        st.threads[tid].vc.join(&sync);
                    }
                    if is_release(success) {
                        let vc = st.threads[tid].vc.clone();
                        st.atomics[self.id].sync.join(&vc);
                    }
                    // SAFETY: as above.
                    unsafe { *self.val.get() = new };
                    Attempt::Ready(Ok(old))
                } else {
                    if is_acquire(failure) {
                        let sync = st.atomics[self.id].sync.clone();
                        st.threads[tid].vc.join(&sync);
                    }
                    Attempt::Ready(Err(old))
                }
            })
        }
    }

    macro_rules! int_atomic {
        ($name:ident, $ty:ty) => {
            /// Model-checked counterpart of the std atomic of the same name.
            #[derive(Debug)]
            pub struct $name {
                inner: Atomic<$ty>,
            }

            impl $name {
                /// Wrap `value` (must be called inside `loom::model`).
                pub fn new(value: $ty) -> Self {
                    $name {
                        inner: Atomic::new(value),
                    }
                }

                /// Atomic load with `ord` semantics.
                pub fn load(&self, ord: Ordering) -> $ty {
                    self.inner.load(ord)
                }

                /// Atomic store with `ord` semantics.
                pub fn store(&self, value: $ty, ord: Ordering) {
                    self.inner.store(value, ord)
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, value: $ty, ord: Ordering) -> $ty {
                    self.inner.rmw(move |_| value, ord)
                }

                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, delta: $ty, ord: Ordering) -> $ty {
                    self.inner.rmw(move |v| v.wrapping_add(delta), ord)
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, delta: $ty, ord: Ordering) -> $ty {
                    self.inner.rmw(move |v| v.wrapping_sub(delta), ord)
                }

                /// Atomic max; returns the previous value.
                pub fn fetch_max(&self, value: $ty, ord: Ordering) -> $ty {
                    self.inner.rmw(move |v| v.max(value), ord)
                }

                /// Strong compare-and-swap.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-and-swap (never fails spuriously here).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicU32, u32);
    int_atomic!(AtomicU64, u64);

    /// Model-checked `AtomicBool`.
    #[derive(Debug)]
    pub struct AtomicBool {
        inner: Atomic<bool>,
    }

    impl AtomicBool {
        /// Wrap `value` (must be called inside `loom::model`).
        pub fn new(value: bool) -> Self {
            AtomicBool {
                inner: Atomic::new(value),
            }
        }

        /// Atomic load with `ord` semantics.
        pub fn load(&self, ord: Ordering) -> bool {
            self.inner.load(ord)
        }

        /// Atomic store with `ord` semantics.
        pub fn store(&self, value: bool, ord: Ordering) {
            self.inner.store(value, ord)
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, value: bool, ord: Ordering) -> bool {
            self.inner.rmw(move |_| value, ord)
        }
    }

    /// Model-checked `AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: Atomic<*mut T>,
    }

    // SAFETY: the pointer value itself is plain data serialized by the model
    // runtime; what it points to is the user's responsibility, as with
    // `std::sync::atomic::AtomicPtr`.
    unsafe impl<T> Send for AtomicPtr<T> {}
    // SAFETY: as above.
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> AtomicPtr<T> {
        /// Wrap `ptr` (must be called inside `loom::model`).
        pub fn new(ptr: *mut T) -> Self {
            AtomicPtr {
                inner: Atomic::new(ptr),
            }
        }

        /// Atomic load with `ord` semantics.
        pub fn load(&self, ord: Ordering) -> *mut T {
            self.inner.load(ord)
        }

        /// Atomic store with `ord` semantics.
        pub fn store(&self, ptr: *mut T, ord: Ordering) {
            self.inner.store(ptr, ord)
        }

        /// Atomic swap; returns the previous pointer.
        pub fn swap(&self, ptr: *mut T, ord: Ordering) -> *mut T {
            self.inner.rmw(move |_| ptr, ord)
        }

        /// Strong compare-and-swap.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}

/// Model-checked mutex with the parking_lot API shape: `lock()` returns the
/// guard directly and there is no poisoning.
#[derive(Debug)]
pub struct Mutex<T> {
    exec: StdArc<rt::Execution>,
    id: usize,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: `data` is only dereferenced through a held `MutexGuard`, and the
// model's lock state admits one holder at a time.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; unlocking is a scheduling point and a release
/// edge.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` (must be called inside `loom::model`).
    pub fn new(value: T) -> Self {
        let (exec, _) = rt::ctx();
        let id = exec.register_mutex();
        Mutex {
            exec,
            id,
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquire the lock, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.exec.op(|st, tid| {
            if st.mutexes[self.id].locked && !st.teardown {
                Attempt::Block(Status::BlockedMutex(self.id))
            } else {
                st.mutexes[self.id].locked = true;
                let sync = st.mutexes[self.id].sync.clone();
                st.threads[tid].vc.join(&sync);
                Attempt::Ready(())
            }
        });
        MutexGuard { mutex: self }
    }
}

/// Release `mutexes[mid]` on behalf of `tid`: release edge plus wakeups.
fn unlock_in_state(st: &mut rt::State, tid: usize, mid: usize) {
    st.mutexes[mid].locked = false;
    let vc = st.threads[tid].vc.clone();
    st.mutexes[mid].sync.join(&vc);
    for t in st.threads.iter_mut() {
        if t.status == Status::BlockedMutex(mid) {
            t.status = Status::Runnable;
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let mid = self.mutex.id;
        self.mutex.exec.op(|st, tid| {
            unlock_in_state(st, tid, mid);
            Attempt::Ready(())
        });
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held; the model serializes
        // all instrumented access and flags misuse as deadlock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for Deref.
        unsafe { &mut *self.mutex.data.get() }
    }
}

/// Result of [`Condvar::wait_until`], mirroring parking_lot.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-checked condition variable (parking_lot API shape).
#[derive(Debug)]
pub struct Condvar {
    exec: StdArc<rt::Execution>,
    id: usize,
}

impl Condvar {
    /// A new condition variable (must be called inside `loom::model`).
    pub fn new() -> Self {
        let (exec, _) = rt::ctx();
        let id = exec.register_condvar();
        Condvar { exec, id }
    }

    /// Atomically release the guard's mutex and sleep until notified, then
    /// reacquire. No spurious wakeups are modeled.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let mid = guard.mutex.id;
        let cid = self.id;
        let mut enqueued = false;
        self.exec.op(|st, tid| {
            if st.teardown {
                Attempt::Ready(())
            } else if !enqueued {
                unlock_in_state(st, tid, mid);
                st.condvars[cid].waiters.push_back(tid);
                enqueued = true;
                Attempt::Block(Status::BlockedCondvar(cid))
            } else if st.mutexes[mid].locked {
                // Notified, but the mutex is contended: queue for it.
                Attempt::Block(Status::BlockedMutex(mid))
            } else {
                st.mutexes[mid].locked = true;
                let sync = st.mutexes[mid].sync.clone();
                st.threads[tid].vc.join(&sync);
                Attempt::Ready(())
            }
        });
    }

    /// Deadline wait, modeled as an *immediate timeout*: the mutex is
    /// released and reacquired (two scheduling points, so a producer can
    /// slip in between) and `timed_out()` is always true. This is a legal
    /// execution of the real primitive — the one where the deadline has
    /// already passed — so protocols must tolerate it; never rely on
    /// `wait_until` for forward progress inside a model.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _deadline: Instant,
    ) -> WaitTimeoutResult {
        let mid = guard.mutex.id;
        self.exec.op(|st, tid| {
            unlock_in_state(st, tid, mid);
            Attempt::Ready(())
        });
        self.exec.op(|st, tid| {
            if st.mutexes[mid].locked && !st.teardown {
                Attempt::Block(Status::BlockedMutex(mid))
            } else {
                st.mutexes[mid].locked = true;
                let sync = st.mutexes[mid].sync.clone();
                st.threads[tid].vc.join(&sync);
                Attempt::Ready(())
            }
        });
        WaitTimeoutResult { timed_out: true }
    }

    /// Wake one waiter, if any.
    pub fn notify_one(&self) {
        let cid = self.id;
        self.exec.op(|st, _tid| {
            if let Some(w) = st.condvars[cid].waiters.pop_front() {
                st.threads[w].status = Status::Runnable;
            }
            Attempt::Ready(())
        });
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        let cid = self.id;
        self.exec.op(|st, _tid| {
            while let Some(w) = st.condvars[cid].waiters.pop_front() {
                st.threads[w].status = Status::Runnable;
            }
            Attempt::Ready(())
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
