//! The exploration driver: run a closure under every schedule reachable
//! within the preemption bound.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt::{self, Decision, Execution};

pub use crate::rt::last_explored_schedules;

/// Exploration limits. The defaults suit the small models this workspace
/// checks; override per-test with [`model_with`] or the environment
/// (`LOOM_MAX_PREEMPTIONS`, `LOOM_MAX_ITERATIONS`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum involuntary context switches per execution (CHESS bound).
    pub max_preemptions: usize,
    /// Hard cap on explored schedules; exceeding it fails the test rather
    /// than silently passing on partial coverage.
    pub max_iterations: usize,
    /// Per-execution scheduling-point cap; tripping it means a livelock.
    pub max_ops: usize,
}

impl Default for Config {
    fn default() -> Self {
        let env_usize = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Config {
            max_preemptions: env_usize("LOOM_MAX_PREEMPTIONS", 2),
            max_iterations: env_usize("LOOM_MAX_ITERATIONS", 300_000),
            max_ops: env_usize("LOOM_MAX_OPS", 50_000),
        }
    }
}

/// Exhaustively explore `f` under the default [`Config`].
///
/// Panics (failing the enclosing test) on the first schedule that observes a
/// data race, a deadlock, a livelock, or a panic inside the model.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}

/// Exhaustively explore `f` under an explicit [`Config`].
pub fn model_with<F>(config: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let mut schedule: Vec<Decision> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > config.max_iterations {
            panic!(
                "loom: exceeded {} schedules without finishing exploration; \
                 shrink the model or raise LOOM_MAX_ITERATIONS",
                config.max_iterations
            );
        }
        schedule = run_one(&f, &config, schedule, iterations);
        // Depth-first backtrack: advance the deepest decision that still has
        // an unexplored alternative, discarding everything after it.
        loop {
            match schedule.last_mut() {
                None => {
                    rt::record_iterations(iterations);
                    if std::env::var_os("LOOM_LOG").is_some() {
                        eprintln!("loom: explored {iterations} schedules");
                    }
                    return;
                }
                Some(d) if d.chosen + 1 < d.options.len() => {
                    d.chosen += 1;
                    break;
                }
                Some(_) => {
                    schedule.pop();
                }
            }
        }
    }
}

fn run_one<F>(f: &F, config: &Config, schedule: Vec<Decision>, iteration: usize) -> Vec<Decision>
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution::new(
        schedule,
        config.max_preemptions,
        config.max_ops,
    ));
    rt::set_ctx(&exec, 0);
    let body = catch_unwind(AssertUnwindSafe(f));
    match body {
        Ok(()) => {
            let epilogue = catch_unwind(AssertUnwindSafe(|| exec.finish_main()));
            rt::clear_ctx();
            if let Err(payload) = epilogue {
                exec.poison_from_main("main thread panicked during rundown".into());
                report(&exec, iteration);
                resume_unwind(payload);
            }
        }
        Err(payload) => {
            rt::clear_ctx();
            // Unwedge parked spawned threads, then surface the model's own
            // diagnosis if it has one (a race message beats a bare panic).
            exec.poison_from_main("main thread panicked".into());
            report(&exec, iteration);
            resume_unwind(payload);
        }
    }
    let (schedule, failed) = exec.into_outcome();
    if let Some(msg) = failed {
        panic!("loom: schedule {iteration} failed: {msg}");
    }
    schedule
}

fn report(exec: &Arc<Execution>, iteration: usize) {
    let (_, failed) = Arc::clone(exec).into_outcome();
    if let Some(msg) = failed {
        eprintln!("loom: schedule {iteration} failed: {msg}");
    } else {
        eprintln!("loom: schedule {iteration} panicked in the model closure");
    }
}
