//! Offline shim of the [loom](https://docs.rs/loom) permutation tester,
//! implementing the subset of the loom 0.7 API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! from-scratch miniature model checker with the same testing discipline:
//!
//! - **Serialized execution.** Threads spawned inside [`model()`] are real OS
//!   threads, but a token-passing scheduler lets exactly one run at a time.
//!   Every operation on a loom primitive (atomic, mutex, condvar, cell,
//!   spawn/join, yield) is a *scheduling point* where the checker may switch
//!   threads.
//! - **Exhaustive schedule exploration.** [`model()`] re-runs the closure under
//!   depth-first search over all scheduling decisions, bounded by a CHESS-style
//!   preemption bound (default 2, `LOOM_MAX_PREEMPTIONS`): every interleaving
//!   reachable with at most that many involuntary context switches is
//!   explored. Unlike real loom there is no DPOR partial-order reduction, so
//!   keep modeled programs small (2–3 threads, a few operations each).
//! - **Happens-before tracking.** Each thread carries a vector clock. Atomic
//!   stores/RMWs with `Release` publish the writer's clock on the location,
//!   `Acquire` loads join it, a `Relaxed` store *clears* the location's
//!   release clock (it breaks the release sequence), and a `Relaxed` RMW
//!   propagates it unchanged (it continues the sequence). Mutex unlock→lock
//!   and spawn/join edges are tracked the same way.
//! - **Data-race detection.** Plain (non-atomic) shared data must live in
//!   [`cell::UnsafeCell`]. Every access is checked against the last write's
//!   and readers' clocks; an access not ordered by happens-before panics with
//!   a `data race` error — *before* the memory is touched. This is what makes
//!   a `Release` store weakened to `Relaxed` observable: the consumer's read
//!   of the published payload loses its ordering edge and the checker trips.
//!
//! Two deliberate simplifications relative to real loom, both *sound for race
//! detection* but weaker for value prediction: atomic loads always observe the
//! most recent store in the serialized execution (no stale-value exploration),
//! and `SeqCst` is modeled as `AcqRel` (no single total order). A bug that
//! only manifests through a stale relaxed *value* (not through a missing
//! happens-before edge) can escape this shim; every misuse of ordering that
//! un-synchronizes a plain-data access cannot.

#![warn(missing_docs)]

pub mod cell;
pub mod hint;
pub mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, model_with, Config};
