//! Execution runtime: the token-passing scheduler, vector clocks, and the
//! per-execution state behind every loom primitive.
//!
//! One [`Execution`] lives for one run of the model closure. All bookkeeping
//! (thread states, atomic sync clocks, cell access histories, mutex/condvar
//! state) sits inside a single `std::sync::Mutex<State>`; primitive
//! operations run their semantics *while holding that lock and the
//! scheduler token*, so instrumented operations are fully serialized and the
//! real mutex provides the hardware-level happens-before edges the model
//! assumes when it hands data from one OS thread to another.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Sentinel for "no thread is active: the execution is complete".
const DONE: usize = usize::MAX;

/// A vector clock: `clock[t]` is the latest operation of thread `t` that
/// happens-before the owner's current point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, tid: usize, val: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = val;
    }

    pub(crate) fn inc(&mut self, tid: usize) {
        let v = self.get(tid) + 1;
        self.set(tid, v);
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        for (tid, &v) in other.0.iter().enumerate() {
            if v > self.get(tid) {
                self.set(tid, v);
            }
        }
    }

    pub(crate) fn clear(&mut self) {
        self.0.clear();
    }

    /// `true` when every entry of `self` is `<=` the matching entry of
    /// `other`, i.e. everything the owner of `self` had seen happens-before
    /// the point described by `other`.
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &v)| v <= other.get(tid))
    }
}

/// What a thread is currently able to do, from the scheduler's viewpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// May be granted the token.
    Runnable,
    /// Voluntarily yielded (spin loop); runnable again once any other thread
    /// makes progress, or when nothing else can run.
    Yielded,
    /// Waiting for a mutex to unlock.
    BlockedMutex(usize),
    /// Waiting on a condvar; only a notify makes it runnable.
    BlockedCondvar(usize),
    /// Waiting for another thread to finish.
    BlockedJoin(usize),
    /// Completed (closure returned and the thread retired).
    Finished,
}

pub(crate) struct ThreadSt {
    pub(crate) status: Status,
    pub(crate) vc: VClock,
}

/// One branch point in the schedule: which runnable thread got the token.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    pub(crate) chosen: usize,
    pub(crate) options: Vec<usize>,
}

#[derive(Default)]
pub(crate) struct AtomicSt {
    /// Clock released by the location's current release sequence; empty when
    /// the last plain store was `Relaxed`.
    pub(crate) sync: VClock,
}

pub(crate) struct CellSt {
    /// Thread id and per-thread clock of the last write (creation counts).
    pub(crate) writer: (usize, u32),
    /// Clock of reads since the last write, one entry per reading thread.
    pub(crate) readers: VClock,
}

#[derive(Default)]
pub(crate) struct MutexSt {
    pub(crate) locked: bool,
    pub(crate) sync: VClock,
}

#[derive(Default)]
pub(crate) struct CondvarSt {
    pub(crate) waiters: VecDeque<usize>,
}

pub(crate) struct State {
    pub(crate) threads: Vec<ThreadSt>,
    pub(crate) active: usize,
    /// Replay prefix plus decisions appended by this execution.
    pub(crate) schedule: Vec<Decision>,
    /// Next decision index to consume (replay) or append (explore).
    step: usize,
    preemptions: usize,
    ops: usize,
    pub(crate) failed: Option<String>,
    /// Set while a panicking thread runs destructor ops: primitives must
    /// neither block nor report failures, so unwinding always completes.
    pub(crate) teardown: bool,
    pub(crate) atomics: Vec<AtomicSt>,
    pub(crate) cells: Vec<CellSt>,
    pub(crate) mutexes: Vec<MutexSt>,
    pub(crate) condvars: Vec<CondvarSt>,
}

/// Outcome of one attempt at an instrumented operation.
pub(crate) enum Attempt<R> {
    /// The operation completed with this result.
    Ready(R),
    /// The operation cannot proceed; park with this status until another
    /// thread changes it back to `Runnable`, then retry.
    Block(Status),
}

pub(crate) struct Execution {
    state: StdMutex<State>,
    // (Condvar and caps below; Debug is manual since State is internal.)
    cv: StdCondvar,
    pub(crate) max_preemptions: usize,
    pub(crate) max_ops: usize,
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution").finish_non_exhaustive()
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Enter `exec` as thread `tid` on the current OS thread.
pub(crate) fn set_ctx(exec: &Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The current execution and thread id; panics outside [`crate::model`].
pub(crate) fn ctx() -> (Arc<Execution>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

fn lock_ignore_poison(m: &StdMutex<State>) -> StdMutexGuard<'_, State> {
    // A panicking thread (deliberate: that is how races are reported) must
    // not wedge every other parked thread behind a poisoned lock.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Execution {
    pub(crate) fn new(schedule: Vec<Decision>, max_preemptions: usize, max_ops: usize) -> Self {
        let mut root_vc = VClock::default();
        root_vc.inc(0);
        Execution {
            state: StdMutex::new(State {
                threads: vec![ThreadSt {
                    status: Status::Runnable,
                    vc: root_vc,
                }],
                active: 0,
                schedule,
                step: 0,
                preemptions: 0,
                ops: 0,
                failed: None,
                teardown: false,
                atomics: Vec::new(),
                cells: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
            }),
            cv: StdCondvar::new(),
            max_preemptions,
            max_ops,
        }
    }

    /// Record a model violation and wake everyone so they can unwind.
    pub(crate) fn fail(&self, st: &mut State, msg: String) -> ! {
        if st.failed.is_none() {
            st.failed = Some(msg.clone());
        }
        self.cv.notify_all();
        panic!("loom model failure: {msg}");
    }

    /// Run one instrumented operation as the current thread.
    ///
    /// Blocks until the scheduler token arrives, executes `attempt` under the
    /// state lock, picks the next thread to run, and returns. `attempt` is
    /// retried after each wakeup while it keeps returning [`Attempt::Block`].
    pub(crate) fn op<R>(&self, mut attempt: impl FnMut(&mut State, usize) -> Attempt<R>) -> R {
        let tid = ctx().1;
        if std::thread::panicking() {
            // Teardown mode: the thread is unwinding (a detected race, a
            // failed assertion…) and destructors of model-checked structures
            // are running their usual instrumented ops. Execute them
            // immediately — no token, no scheduling, no further panics — so
            // cleanup completes instead of aborting in a destructor.
            let mut st = lock_ignore_poison(&self.state);
            st.teardown = true;
            let r = loop {
                match attempt(&mut st, tid) {
                    Attempt::Ready(r) => break r,
                    // Primitives never return Block when st.teardown is set.
                    Attempt::Block(_) => continue,
                }
            };
            st.teardown = false;
            return r;
        }
        let mut st = lock_ignore_poison(&self.state);
        loop {
            while st.active != tid {
                if st.failed.is_some() {
                    let msg = st.failed.clone().unwrap();
                    drop(st);
                    panic!("loom model failure (propagated): {msg}");
                }
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if let Some(msg) = st.failed.clone() {
                drop(st);
                panic!("loom model failure (propagated): {msg}");
            }
            st.ops += 1;
            if st.ops > self.max_ops {
                let msg = format!(
                    "livelock: more than {} scheduling points in one execution",
                    self.max_ops
                );
                self.fail(&mut st, msg);
            }
            st.threads[tid].vc.inc(tid);
            match attempt(&mut st, tid) {
                Attempt::Ready(r) => {
                    // Progress was made: spinners (other than the thread
                    // that just yielded, if this op *is* the yield) get
                    // another look.
                    for (i, t) in st.threads.iter_mut().enumerate() {
                        if i != tid && t.status == Status::Yielded {
                            t.status = Status::Runnable;
                        }
                    }
                    self.schedule_next(&mut st, tid);
                    self.cv.notify_all();
                    return r;
                }
                Attempt::Block(status) => {
                    st.threads[tid].status = status;
                    self.schedule_next(&mut st, tid);
                    self.cv.notify_all();
                    // Stay in the loop: wait to be made runnable and granted
                    // the token, then retry the operation.
                }
            }
        }
    }

    /// Pick the next thread to hold the token. `me` is the thread releasing
    /// it (it may be picked again when still runnable).
    fn schedule_next(&self, st: &mut State, me: usize) {
        let runnable = |st: &State| -> Vec<usize> {
            st.threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Runnable)
                .map(|(i, _)| i)
                .collect()
        };
        let mut cand = runnable(st);
        if cand.is_empty() {
            // Only spinners left: let them all try again.
            let mut any = false;
            for t in st.threads.iter_mut() {
                if t.status == Status::Yielded {
                    t.status = Status::Runnable;
                    any = true;
                }
            }
            if any {
                cand = runnable(st);
            }
        }
        if cand.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.active = DONE;
                return;
            }
            let dump: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                .collect();
            let msg = format!("deadlock: no runnable threads [{}]", dump.join(", "));
            self.fail(st, msg);
        }

        let me_runnable = cand.contains(&me);
        // Deterministic option order: continuing the current thread first
        // keeps schedule 0 the sequential one and makes preemptions the
        // explored alternatives.
        let mut options = Vec::with_capacity(cand.len());
        if me_runnable {
            options.push(me);
        }
        options.extend(cand.iter().copied().filter(|&t| t != me));

        // CHESS-style preemption bound: once the budget is spent, a runnable
        // thread is never involuntarily descheduled.
        if me_runnable && st.preemptions >= self.max_preemptions {
            options.truncate(1);
        }

        let chosen = if options.len() == 1 {
            options[0]
        } else if st.step < st.schedule.len() {
            let d = st.schedule[st.step].clone();
            if d.options != options {
                let msg = format!(
                    "nondeterministic execution: replay step {} expected options {:?}, got {:?}",
                    st.step, d.options, options
                );
                self.fail(st, msg);
            }
            st.step += 1;
            options[d.chosen]
        } else {
            st.schedule.push(Decision {
                chosen: 0,
                options: options.clone(),
            });
            st.step += 1;
            options[0]
        };
        if me_runnable && chosen != me {
            st.preemptions += 1;
        }
        st.active = chosen;
    }

    /// Mark the current thread finished and hand the token on.
    pub(crate) fn retire(&self, tid: usize) {
        self.op(|st, me| {
            debug_assert_eq!(me, tid);
            st.threads[me].status = Status::Finished;
            // Wake joiners.
            for t in st.threads.iter_mut() {
                if t.status == Status::BlockedJoin(me) {
                    t.status = Status::Runnable;
                }
            }
            Attempt::Ready(())
        });
    }

    /// Main-thread epilogue: retire thread 0, then wait for every spawned
    /// thread to finish so the next exploration iteration starts clean.
    pub(crate) fn finish_main(&self) {
        self.retire(0);
        let mut st = lock_ignore_poison(&self.state);
        while st.active != DONE {
            if st.failed.is_some() {
                let msg = st.failed.clone().unwrap();
                drop(st);
                panic!("loom model failure (propagated): {msg}");
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Record a failure observed outside an instrumented op (e.g. a panic in
    /// the model closure itself) so parked threads unwind instead of hanging.
    pub(crate) fn poison_from_main(&self, msg: String) {
        let mut st = lock_ignore_poison(&self.state);
        if st.failed.is_none() {
            st.failed = Some(msg);
        }
        st.active = DONE;
        self.cv.notify_all();
    }

    /// The schedule including decisions appended by this execution, and
    /// whether it failed.
    pub(crate) fn into_outcome(self: Arc<Self>) -> (Vec<Decision>, Option<String>) {
        let exec = Arc::try_unwrap(self);
        match exec {
            Ok(e) => {
                let st = e.state.into_inner().unwrap_or_else(|p| p.into_inner());
                (st.schedule, st.failed)
            }
            Err(shared) => {
                // A spawned OS thread is still unwinding and holds a clone;
                // snapshot through the lock instead.
                let st = lock_ignore_poison(&shared.state);
                (st.schedule.clone(), st.failed.clone())
            }
        }
    }

    // ---- registration helpers used by the primitives ----

    pub(crate) fn register_atomic(&self) -> usize {
        let mut st = lock_ignore_poison(&self.state);
        st.atomics.push(AtomicSt::default());
        st.atomics.len() - 1
    }

    pub(crate) fn register_cell(&self, creator: usize) -> usize {
        let mut st = lock_ignore_poison(&self.state);
        let clock = st.threads[creator].vc.get(creator);
        st.cells.push(CellSt {
            writer: (creator, clock),
            readers: VClock::default(),
        });
        st.cells.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = lock_ignore_poison(&self.state);
        st.mutexes.push(MutexSt::default());
        st.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = lock_ignore_poison(&self.state);
        st.condvars.push(CondvarSt::default());
        st.condvars.len() - 1
    }
}

/// Register a newly spawned thread in `st`; returns its id. The child
/// inherits the parent's clock (spawn edge). Must run inside an op so thread
/// ids are assigned in schedule order (replay determinism).
pub(crate) fn spawn_thread(st: &mut State, parent: usize) -> usize {
    st.threads[parent].vc.inc(parent);
    let mut vc = st.threads[parent].vc.clone();
    let tid = st.threads.len();
    vc.inc(tid);
    st.threads.push(ThreadSt {
        status: Status::Runnable,
        vc,
    });
    tid
}

/// Global count of executions explored by the most recent [`crate::model`]
/// call (for logging and shim tests).
pub(crate) static LAST_ITERATIONS: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn record_iterations(n: usize) {
    LAST_ITERATIONS.store(n, Ordering::Relaxed);
}

/// Number of schedules the most recent `model()` run explored.
pub fn last_explored_schedules() -> usize {
    LAST_ITERATIONS.load(Ordering::Relaxed)
}
