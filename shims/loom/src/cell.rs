//! Race-checked interior mutability, mirroring `loom::cell::UnsafeCell`.

use std::sync::Arc;

use crate::rt::{self, Attempt};

/// An `UnsafeCell` whose accesses are checked against the happens-before
/// relation: any read/write or write/write pair not ordered by the model is
/// reported as a data race (and the access is refused before touching
/// memory).
///
/// Creation counts as a write by the creating thread, so a payload built by
/// a producer and read by a consumer is racy unless a synchronizing edge
/// (release store → acquire load, mutex, join…) separates them.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    exec: Arc<rt::Execution>,
    id: usize,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: all access to `data` goes through `with`/`with_mut`, which run
// under the execution's state lock while holding the scheduler token and
// refuse (panic) on any pair of accesses not ordered by happens-before.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: as above — the model serializes and race-checks every access.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Wrap `value`; counts as a write by the current thread.
    pub fn new(value: T) -> Self {
        let (exec, tid) = rt::ctx();
        let id = exec.register_cell(tid);
        UnsafeCell {
            exec,
            id,
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Immutable access. Panics if the last write does not happen-before
    /// this read.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let mut f = Some(f);
        self.exec.op(|st, tid| {
            let (wt, wc) = st.cells[self.id].writer;
            if st.threads[tid].vc.get(wt) < wc && !st.teardown {
                let msg =
                    format!("data race: unsynchronized read of UnsafeCell written by thread {wt}");
                self.exec.fail(st, msg);
            }
            let clock = st.threads[tid].vc.get(tid);
            st.cells[self.id].readers.set(tid, clock);
            let func = f.take().expect("with retried after completion");
            Attempt::Ready(func(self.data.get()))
        })
    }

    /// Mutable access. Panics unless the last write *and* all reads since it
    /// happen-before this write.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let mut f = Some(f);
        self.exec.op(|st, tid| {
            let (wt, wc) = st.cells[self.id].writer;
            if st.threads[tid].vc.get(wt) < wc && !st.teardown {
                let msg =
                    format!("data race: unsynchronized write of UnsafeCell written by thread {wt}");
                self.exec.fail(st, msg);
            }
            if !st.cells[self.id].readers.le(&st.threads[tid].vc) && !st.teardown {
                let msg = "data race: write of UnsafeCell concurrent with an unsynchronized read"
                    .to_string();
                self.exec.fail(st, msg);
            }
            let clock = st.threads[tid].vc.get(tid);
            st.cells[self.id].writer = (tid, clock);
            st.cells[self.id].readers.clear();
            let func = f.take().expect("with_mut retried after completion");
            Attempt::Ready(func(self.data.get()))
        })
    }
}
