//! Model-checked threads: real OS threads serialized by the scheduler.

use std::sync::{Arc, Mutex as StdMutex};

use crate::rt::{self, Attempt, Status};

/// Result slot shared between a spawned thread and its [`JoinHandle`].
type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

/// Handle to a model thread; [`JoinHandle::join`] is a scheduling point and a
/// synchronization (happens-before) edge, like real `std::thread`.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Slot<T>,
    exec: Arc<rt::Execution>,
}

/// Spawn a model thread. The spawn itself is a scheduling point; the child
/// inherits the parent's vector clock (spawn edge) and begins parked until
/// the scheduler grants it the token.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, _parent) = rt::ctx();
    let tid = exec.op(|st, me| {
        let tid = rt::spawn_thread(st, me);
        Attempt::Ready(tid)
    });
    let slot: Slot<T> = Arc::new(StdMutex::new(None));
    {
        let exec = Arc::clone(&exec);
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            rt::set_ctx(&exec, tid);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                    exec.retire(tid);
                }
                Err(payload) => {
                    // A panicking model thread fails the whole model (loom
                    // semantics); record it so parked peers unwind too.
                    let msg = panic_message(&payload);
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(payload));
                    exec.poison_from_main(format!("model thread {tid} panicked: {msg}"));
                }
            }
            rt::clear_ctx();
        });
    }
    JoinHandle { tid, slot, exec }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, joining its clock into the caller's.
    pub fn join(self) -> std::thread::Result<T> {
        let tid = self.tid;
        self.exec.op(|st, me| {
            if st.threads[tid].status == Status::Finished {
                let child_vc = st.threads[tid].vc.clone();
                st.threads[me].vc.join(&child_vc);
                Attempt::Ready(())
            } else if st.teardown {
                Attempt::Ready(())
            } else {
                Attempt::Block(Status::BlockedJoin(tid))
            }
        });
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_else(|| Err(Box::new("loom: join during teardown")))
    }
}

/// Voluntarily release the token; the thread is rescheduled only after some
/// other thread makes progress (or nothing else can run).
pub fn yield_now() {
    let (exec, _) = rt::ctx();
    exec.op(|st, me| {
        st.threads[me].status = Status::Yielded;
        Attempt::Ready(())
    });
}
