//! Spin-loop hints, remapped to scheduler yields under the model.

/// In a model, a spin-loop hint is a yield: the spinning thread gives up the
/// token until some other thread makes progress, so busy-wait loops cannot
/// monopolize the (serialized) schedule.
pub fn spin_loop() {
    crate::thread::yield_now();
}
