//! Offline shim for the subset of `criterion` this workspace uses. It
//! measures wall-clock time per iteration (median of a few samples after a
//! short warm-up) and prints one line per benchmark; there is no HTML
//! report, statistical analysis, or baseline comparison.
//!
//! Iteration counts adapt to a small per-benchmark time budget so heavy
//! benchmarks (whole engine runs) stay fast; set `CRITERION_BUDGET_MS` to
//! change the budget (default 200 ms per benchmark).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a benchmark's throughput is measured in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median seconds per iteration, filled in by [`Bencher::iter`].
    secs_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and calibration: time single runs until we know roughly
        // how expensive one iteration is.
        let calibration = Instant::now();
        let mut one = Duration::ZERO;
        let mut warmups = 0u32;
        while warmups < 3 && calibration.elapsed() < budget() {
            let t = Instant::now();
            black_box(routine());
            one = t.elapsed();
            warmups += 1;
        }
        let one_secs = one.as_secs_f64().max(1e-9);
        // Aim for ~5 samples within the remaining budget, each batching
        // enough iterations to be measurable.
        let per_sample = (budget().as_secs_f64() / 5.0).max(1e-4);
        let iters = ((per_sample / one_secs).round() as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
            if calibration.elapsed() > budget() * 3 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.secs_per_iter = samples[samples.len() / 2];
    }
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling here is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { secs_per_iter: 0.0 };
        f(&mut b);
        self.report(&id, b.secs_per_iter);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { secs_per_iter: 0.0 };
        f(&mut b, input);
        self.report(&id.name, b.secs_per_iter);
        self
    }

    /// Finish the group (prints nothing extra; reports are per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, secs: f64) {
        let mut line = format!("{}/{}: {}", self.name, id, format_time(secs));
        match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                line.push_str(&format!("  ({:.3} Melem/s)", n as f64 / secs / 1e6));
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                line.push_str(&format!(
                    "  ({:.3} MiB/s)",
                    n as f64 / secs / (1024.0 * 1024.0)
                ));
            }
            _ => {}
        }
        println!("{line}");
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs/iter", secs * 1e6)
    } else {
        format!("{:.1} ns/iter", secs * 1e9)
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A default-configured harness.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (CLI args are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn format_covers_ranges() {
        assert!(format_time(2.0).ends_with("s/iter"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
