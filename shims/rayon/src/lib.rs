//! Offline shim for the subset of `rayon` this workspace uses, built on
//! `std::thread::scope`. Parallelism is real (work is split across OS
//! threads), but there is no work-stealing: each parallel call splits its
//! items into contiguous chunks, one per thread, which matches how the
//! workspace uses rayon (coarse row-block GEMM tasks and per-sub-batch
//! Hogwild lanes).
//!
//! Supported surface:
//! - `slice.par_iter().for_each(f)` / `.map(f).collect::<Vec<_>>()`
//! - `slice.par_chunks_mut(n).enumerate().for_each(f)`
//! - `ThreadPoolBuilder::new().num_threads(n).thread_name(f).build()`
//!   and `ThreadPool::install(f)` (sets the thread-count hint for nested
//!   parallel calls made on the installing thread).

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; 0 means
    /// "use available parallelism".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel calls on this thread will fan out to.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run `n_items` indexed jobs across up to `current_num_threads()` scoped
/// threads, preserving item order in the returned vector.
fn run_indexed<R, F>(n_items: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n_items == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().clamp(1, n_items);
    if threads == 1 {
        return (0..n_items).map(job).collect();
    }
    let chunk = n_items.div_ceil(threads);
    let job = &job;
    let mut parts: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n_items);
                s.spawn(move || (lo..hi).map(job).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n_items);
    for p in &mut parts {
        out.append(p);
    }
    out
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_indexed(self.items.len(), |i| f(&self.items[i]));
    }

    /// Map every item through `f`, in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Result of [`ParIter::map`]; terminate with [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: From<Vec<R>>,
    {
        run_indexed(self.items.len(), |i| (self.f)(&self.items[i])).into()
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Apply `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated form of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let n = self.chunks.len();
        if n == 0 {
            return;
        }
        let threads = current_num_threads().clamp(1, n);
        if threads == 1 {
            for (i, c) in self.chunks.into_iter().enumerate() {
                f((i, c));
            }
            return;
        }
        // Deal chunks round-robin into per-thread work lists so each scoped
        // thread owns a disjoint set of `&mut` chunks.
        let mut lists: Vec<Vec<(usize, &'a mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, c) in self.chunks.into_iter().enumerate() {
            lists[i % threads].push((i, c));
        }
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = lists
                .into_iter()
                .map(|list| {
                    s.spawn(move || {
                        for item in list {
                            f(item);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("rayon shim worker panicked");
            }
        });
    }
}

/// Extension trait providing `.par_iter()` on slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: Sync + 'a;
    /// A parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Extension trait providing `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Everything call sites import via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut};
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 = use available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepted for API compatibility; this shim spawns short-lived scoped
    /// threads per parallel call, so persistent thread names don't apply.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: Fn(usize) -> String,
    {
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A thread-count scope: parallel calls inside [`ThreadPool::install`] fan
/// out to this pool's thread count.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count installed for the current
    /// thread's nested parallel calls.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let out = op();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }

    /// This pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_for_each_visits_all() {
        let xs: Vec<usize> = (0..257).collect();
        let count = AtomicUsize::new(0);
        xs.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjoint() {
        let mut buf = vec![0u32; 100];
        buf.par_chunks_mut(7).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        for (j, v) in buf.iter().enumerate() {
            assert_eq!(*v, (j / 7) as u32 + 1);
        }
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }
}
