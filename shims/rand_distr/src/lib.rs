//! Offline shim for the subset of `rand_distr` 0.4 this workspace uses:
//! the [`Normal`] distribution sampled through [`Distribution::sample`],
//! implemented with the Box–Muller transform.

use rand::Rng;

/// Types that can be sampled from a distribution.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal-distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Floats [`Normal`] can be parameterized over (f32, f64).
pub trait NormalFloat: Copy {
    /// Widen to f64 for internal math.
    fn to_f64(self) -> f64;
    /// Narrow from f64.
    fn from_f64(x: f64) -> Self;
}

impl NormalFloat for f32 {
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
}

impl NormalFloat for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(x: f64) -> Self {
        x
    }
}

impl<F: NormalFloat> Normal<F> {
    /// A normal distribution; `std_dev` must be finite and ≥ 0.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        let (m, s) = (mean.to_f64(), std_dev.to_f64());
        if s.is_finite() && s >= 0.0 && m.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller: two uniforms → one standard normal.
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_roughly_match() {
        let n = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let k = 20_000;
        let samples: Vec<f64> = (0..k).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / k as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f32, f32::NAN).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }
}
