//! Offline shim for the subset of `parking_lot` 0.12 this workspace uses,
//! implemented on `std::sync`. Semantics preserved:
//!
//! - `lock()`/`read()`/`write()` return guards directly (no `Result`);
//!   poisoning is ignored, matching parking_lot's panic-transparent locks.
//! - [`Condvar::wait`] takes `&mut MutexGuard` (parking_lot style); the
//!   guard wraps an `Option<std::sync::MutexGuard>` so the std API's
//!   by-value wait can slot back in place.
//! - [`Condvar::wait_until`] takes an `Instant` deadline and returns a
//!   [`WaitTimeoutResult`] with `timed_out()`.

use std::time::Instant;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A reader–writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed condition wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `&mut guard` calling convention.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all parked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guard_derefs() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
