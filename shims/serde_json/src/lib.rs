//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], implemented as a
//! JSON text layer over the `serde` shim's [`Value`] tree.
//!
//! Numbers are written with Rust's shortest-round-trip float formatting,
//! so `f64` (and therefore `f32`, which embeds exactly) survives a text
//! round-trip bit-for-bit. Non-finite floats serialize as `null`, matching
//! `serde_json::to_value`'s lossy treatment rather than erroring.

pub use serde::Value;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert `value` to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ----------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    // `1.0f64.to_string()` is "1" — keep a float marker so the value parses
    // back as F64 rather than an integer only when it had a fraction; an
    // integral float re-reading as an integer still deserializes correctly
    // through the numeric coercions in the serde shim.
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid trailing surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
        let y = 1.0e-7f32;
        assert_eq!(from_str::<f32>(&to_string(&y).unwrap()).unwrap(), y);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1F600}\u{07}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<Option<Vec<u32>>> = vec![Some(vec![1, 2]), None, Some(vec![])];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<Vec<u32>>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }
}
