//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test function's name), so failures reproduce exactly on re-run. There
//! is no shrinking: a failing case panics with the rendered assertion
//! message. Supported surface: `proptest! { #![proptest_config(...)]
//! #[test] fn f(x in strategy, ...) { ... } }`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, `any::<T>()`, range strategies,
//! tuple strategies, `Strategy::prop_map`, and `prop::collection::vec`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// RNG driving case generation.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected by `prop_assume!`; it is skipped, not failed.
    Reject(String),
    /// Assertion failure; the run panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A 0, B 1);
impl_tuple_strategy!(A 0, B 1, C 2);
impl_tuple_strategy!(A 0, B 1, C 2, D 3);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, moderate magnitude — proptest's default also avoids
        // NaN/Inf unless asked.
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e6f64..1.0e6)
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec()`]: a range, inclusive range, or exact size.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-size range");
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }
}

/// Seed a per-test RNG from the test's name (stable across runs).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything call sites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests (see crate docs for the supported grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20) {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                }
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {}", msg);
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn map_and_assume_work((a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y))) {
            prop_assume!(a % 7 != 3);
            prop_assert!(b >= a);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut r1 = crate::rng_for("some::test");
        let mut r2 = crate::rng_for("some::test");
        let s = 0usize..1000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
