//! Offline shim for the subset of `crossbeam` 0.8 this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}`. The workspace only
//! ever uses single-consumer channels, so `std::sync::mpsc` is a faithful
//! substitute.

/// MPSC channels re-exported from the standard library.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 3);
    }
}
