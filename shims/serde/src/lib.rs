//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's zero-copy visitor machinery, this shim routes
//! everything through an owned [`Value`] tree: [`Serialize`] renders a type
//! to a `Value`, [`Deserialize`] rebuilds it from one. `serde_json` (the
//! companion shim) converts `Value` to and from JSON text. The derive
//! macros live in `serde_derive` and target exactly this trait pair,
//! producing serde-compatible shapes: structs become objects, unit enum
//! variants become strings, and data-carrying variants become
//! externally-tagged single-key objects.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (positive integers parse as [`Value::U64`]).
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an object; `None` for other value kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Self as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: fetch and deserialize a struct field.
///
/// A missing key deserializes from `Null`, so `Option` fields tolerate
/// absence (matching serde) while required fields produce a clear error.
pub fn __field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::msg(format!("field `{key}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::msg(format!("missing field `{key}`")))
        }
    }
}

fn unexpected(expected: &str, got: &Value) -> DeError {
    DeError::msg(format!("expected {expected}, got {}", got.kind()))
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(unexpected("bool", v)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(unexpected("unsigned integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => {
                        i64::try_from(*n).map_err(|_| DeError::msg("integer out of range"))?
                    }
                    _ => return Err(unexpected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(unexpected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 → f64 is exact, so text round-trips recover the exact f32.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(unexpected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` leaks the parsed string. The
    /// workspace only does this for tiny catalog metadata in round-trip
    /// tests, where the leak is a few bytes per run.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(unexpected("string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(unexpected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($len:literal; $($t:ident $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(a) if a.len() == $len => {
                        Ok(($($t::from_value(&a[$idx])?,)+))
                    }
                    _ => Err(DeError::msg(concat!("expected array of length ", $len))),
                }
            }
        }
    };
}
impl_tuple!(2; A 0, B 1);
impl_tuple!(3; A 0, B 1, C 2);
impl_tuple!(4; A 0, B 1, C 2, D 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None::<u8>);
        let v: Vec<u16> = vec![1, 2, 3];
        assert_eq!(Vec::<u16>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn missing_field_errors_but_option_defaults() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(__field::<u64>(&obj, "a").unwrap(), 1);
        assert!(__field::<u64>(&obj, "b").is_err());
        assert_eq!(__field::<Option<u64>>(&obj, "b").unwrap(), None);
    }
}
