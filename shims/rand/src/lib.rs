//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the real `rand`. It provides [`rngs::StdRng`] (an xoshiro256++ core
//! seeded through SplitMix64), the [`Rng`] / [`SeedableRng`] traits with
//! `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates). Streams are deterministic per seed, which is the only
//! property the workspace relies on — the exact values differ from upstream
//! `rand`, and that is fine because no test pins upstream output.

/// Construct a PRNG from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full PRNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self.next_u64())
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut |n| uniform_u64(self.next_u64(), n))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Map 64 random bits onto `0..n` without modulo bias beyond 2^-64.
fn uniform_u64(bits: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((bits as u128 * n as u128) >> 64) as u64
}

/// Types that `Rng::gen` can produce from raw bits.
pub trait Standard {
    /// Derive a uniformly distributed value from 64 random bits.
    fn sample_standard(bits: u64) -> Self;
}

impl Standard for f32 {
    fn sample_standard(bits: u64) -> f32 {
        // 24 mantissa bits → uniform in [0, 1).
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn sample_standard(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample uniformly from the range; `draw(n)` yields a uniform `0..n`.
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + draw(span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full-width u64 range: any draw is valid.
                    return lo.wrapping_add(draw(u64::MAX) as $t);
                }
                lo + draw(span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (draw(u64::MAX) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                // 53-bit mantissa draw in [0, 1]; the closed upper end is
                // reachable (unlike the half-open Range impl above).
                let unit = (draw(u64::MAX) >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
float_range!(f32, f64);

/// PRNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed, as upstream does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_unit_floats() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Deterministic per seed.
        let mut w: Vec<usize> = (0..100).collect();
        w.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(v, w);
    }
}
