#!/usr/bin/env bash
# Mutation check for the queue's publish ordering.
#
# The producer's `next`-pointer store in crates/mq/src/queue.rs must be
# `Release` (PUBLISH_ORD). Building with `--cfg hetero_weak_publish` weakens
# it to `Relaxed` — a seeded bug. This script asserts that:
#   1. the loom suite passes with the correct ordering, and
#   2. the loom suite FAILS (with a data-race report) under the mutation,
# i.e. the model checker genuinely guards the publish edge.
#
# Usage: scripts/check_mutation.sh   (from anywhere in the repo)
set -u
cd "$(dirname "$0")/.."

log="target/weak_publish_test.log"
mkdir -p target

echo "[1/2] baseline: loom queue suite must pass with Release publish"
if ! cargo test -p hetero-mq --features loom --test loom_queue -q >"$log" 2>&1; then
    echo "FAIL: baseline loom suite is red"
    tail -40 "$log"
    exit 1
fi

echo "[2/2] mutation: suite must FAIL with publish weakened to Relaxed"
if RUSTFLAGS="--cfg hetero_weak_publish" \
    cargo test -p hetero-mq --features loom --test loom_queue -q >"$log" 2>&1; then
    echo "FAIL: Release->Relaxed publish mutation was NOT caught"
    exit 1
fi
if ! grep -q "data race" "$log"; then
    echo "FAIL: suite failed under the mutation, but not with a data-race report"
    tail -40 "$log"
    exit 1
fi

echo "OK: Release->Relaxed publish mutation is caught by the loom suite (data race reported)"
