#!/usr/bin/env python3
"""Summarize results/*.log into the markdown tables EXPERIMENTS.md embeds."""
import re, sys, pathlib

results = pathlib.Path(__file__).resolve().parent.parent / "results"

def fig5_table():
    log = (results / "fig5_convergence.log").read_text()
    rows, ds = [], None
    for line in log.splitlines():
        m = re.match(r"== (\S+) \(basis loss ([\d.]+)\) ==", line)
        if m:
            ds = m.group(1); rows.append(("basis", ds, m.group(2), ""))
            continue
        m = re.match(r"\s+(.+?)\s+final\s+([\d.]+)x basis \| reaches 1.5x basis at (\S+)", line)
        if m and ds:
            rows.append((m.group(1).strip(), ds, m.group(2), m.group(3)))
    datasets = [r[1] for r in rows if r[0] == "basis"]
    algos = []
    for r in rows:
        if r[0] != "basis" and r[0] not in algos:
            algos.append(r[0])
    print("| algorithm | " + " | ".join(f"{d} final / reach" for d in datasets) + " |")
    print("|---|" + "---|" * len(datasets))
    for a in algos:
        cells = []
        for d in datasets:
            hit = [r for r in rows if r[0] == a and r[1] == d]
            cells.append(f"{hit[0][2]}× / {hit[0][3]}" if hit else "—")
        print(f"| {a} | " + " | ".join(cells) + " |")

def fig6_table():
    log = (results / "fig6_statistical_efficiency.log").read_text()
    rows, ds = [], None
    for line in log.splitlines():
        m = re.match(r"== (\S+) ==", line)
        if m:
            ds = m.group(1); continue
        m = re.match(r"\s+(.+?)\s+([\d.]+) epochs run \| loss after 1 epoch (.+)", line)
        if m and ds:
            rows.append((m.group(1).strip(), ds, m.group(2), m.group(3).strip()))
    datasets, algos = [], []
    for r in rows:
        if r[1] not in datasets: datasets.append(r[1])
        if r[0] not in algos: algos.append(r[0])
    print("| algorithm | " + " | ".join(f"{d}: epochs run / loss@1ep" for d in datasets) + " |")
    print("|---|" + "---|" * len(datasets))
    for a in algos:
        cells = []
        for d in datasets:
            hit = [r for r in rows if r[0] == a and r[1] == d]
            cells.append(f"{hit[0][2]} / {hit[0][3]}" if hit else "—")
        print(f"| {a} | " + " | ".join(cells) + " |")

def passthrough(name):
    print((results / name).read_text())

if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    if which in ("fig5", "all"):
        print("### fig5\n"); fig5_table(); print()
    if which in ("fig6", "all"):
        print("### fig6\n"); fig6_table(); print()
    if which in ("ablations", "all"):
        print("### ablations\n"); passthrough("ablations.log")
    if which in ("extensions", "all"):
        print("### extensions\n"); passthrough("extensions.log")
